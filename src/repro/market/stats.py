"""Process-wide market counters (the ``planner_stats`` pattern).

One instance per process; scenario executors reset it at the top of each
run so payloads stay pure functions of the spec (see the determinism
contract in :mod:`repro.exec`).  Surfaced as monitor probes by
:mod:`repro.metrics.market` and reset uniformly through the
:class:`~repro.metrics.registry.MetricsRegistry`.
"""

from __future__ import annotations

__all__ = ["MarketStats", "market_stats"]


class MarketStats:
    """Cumulative marketplace counters.

    ``epochs`` counts controller clearing rounds, ``retunes`` the rounds
    that actually changed α (and triggered a plan-diff rebalance);
    ``idle_epochs`` the rounds short-circuited with an empty book and an
    unchanged placement.  Lease lifecycle: ``offers_published`` /
    ``leases_granted`` / ``leases_noticed`` / ``leases_revoked``.
    Migration accounting comes from the scavenger's rebalance summaries:
    ``stripes_migrated`` / ``bytes_migrated`` / ``bytes_freed`` /
    ``files_deferred`` (budget exhausted, left for the next epoch).
    """

    _COUNTERS = ("epochs", "retunes", "idle_epochs",
                 "offers_published", "leases_granted", "leases_noticed",
                 "leases_revoked", "demands_submitted",
                 "stripes_migrated", "bytes_migrated", "bytes_freed",
                 "files_deferred")
    __slots__ = _COUNTERS

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        for name in self._COUNTERS:
            setattr(self, name, 0)

    def snapshot(self) -> dict[str, float]:
        return {name: getattr(self, name) for name in self._COUNTERS}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{k}={v}" for k, v in self.snapshot().items()
                          if v)
        return f"<MarketStats {parts or 'idle'}>"


market_stats = MarketStats()
