"""The ``market-fig2`` scenario: lease churn, static α vs the controller.

One spec is one seeded run of the dd bag on a tight scavenging
deployment while a deterministic *churn schedule* reclaims victim leases
with notice and reposts them through the market book.  Three modes share
the schedule and the workload:

* ``calm`` — no churn, no controller: the per-task baseline durations
  every slowdown is measured against;
* ``static`` — churn with the controller granting reposted offers but
  **not** retuning (``retune=False``): the paper's fixed α=25 % under a
  hostile lease market;
* ``controller`` — the same churn with live α retuning: risk-discounted
  supply pulls data home before reclaim waves land.

The payload carries per-task durations (slowdowns are computed against
the same seed's ``calm`` run), the α trace, the market counters and a
full read-back audit — any lost or truncated file is a data-loss event,
and the soak lane (:mod:`repro.market.soak`) asserts there are none.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.deployment import DeploymentConfig, MemFSSDeployment
from ..exec.spec import ScenarioSpec
from ..fs import pressure_stats
from ..sim.rng import RngRegistry
from ..units import GB, MB
from ..workflows import WorkflowEngine, dd_bag
from .controller import MarketController
from .stats import market_stats

__all__ = ["ChurnEvent", "build_churn_schedule", "market_spec",
           "market_mode_specs", "run_market"]

MARKET_MODES = ("calm", "static", "controller")


@dataclass(frozen=True)
class ChurnEvent:
    """One reclaim (and optional repost) cycle on a victim node."""

    at: float            # when the victim's lease gets its notice
    victim: int          # index into the deployment's victim list
    notice: float        # revocation-notice period (seconds)
    repost: bool         # does the victim come back to the market?
    repost_after: float  # delay from notice to the market repost
    duration: float      # lease term offered on the repost


def build_churn_schedule(n_victims: int, *, horizon: float = 12.0,
                         n_events: int = 5,
                         repost_probability: float = 0.5,
                         stream=None,
                         rng: RngRegistry | None = None,
                         seed: int = 0) -> tuple[ChurnEvent, ...]:
    """A seeded reclaim/repost schedule (same seed → identical events).

    Each event serves a victim its revocation notice; with probability
    *repost_probability* the node returns to the market as a *termed*
    offer, otherwise the tenant keeps it — the supply shrinks for good,
    which is exactly the state the α controller prices and static α
    cannot.
    """
    if stream is None:
        stream = (rng or RngRegistry(seed)).stream("market-churn")
    events = []
    for _ in range(n_events):
        at = float(stream.uniform(2.0, horizon))
        notice = float(stream.uniform(1.0, 4.0))
        events.append(ChurnEvent(
            at=at, victim=int(stream.choice(max(1, n_victims))),
            notice=notice,
            repost=bool(stream.uniform(0.0, 1.0) < repost_probability),
            repost_after=notice + float(stream.uniform(2.0, 8.0)),
            duration=float(stream.uniform(20.0, 60.0))))
    return tuple(sorted(events, key=lambda e: (e.at, e.victim)))


def _churn(env, manager, controller, victims, schedule, memory):
    """Generator: walk the schedule, reclaiming and reposting leases."""
    for ev in schedule:
        if ev.at > env.now:
            yield env.timeout(ev.at - env.now)
        node = victims[ev.victim % len(victims)]
        lease = manager.leases.get(node.name)
        if lease is None or not lease.active or lease.notified.triggered:
            continue        # already reclaimed (or never granted): skip
        lease.revoke_with_notice("market-reclaim", notice=ev.notice)
        if ev.repost:
            env.call_later(
                ev.repost_after,
                lambda n=node, e=ev: controller.publish(
                    n, memory, duration=e.duration, notice=e.notice))


def market_spec(seed: int, mode: str = "controller", *,
                n_tasks: int = 256, file_size: float = 64 * MB,
                compute_seconds: float = 2.0, n_events: int = 5,
                horizon: float = 12.0, repost_probability: float = 0.5,
                epoch: float = 2.0, alpha: float = 0.25,
                deadband: float = 0.05, alpha_ceil: float = 0.75,
                budget_bytes: float | None = 768 * MB) -> ScenarioSpec:
    if mode not in MARKET_MODES:
        raise ValueError(f"mode must be one of {MARKET_MODES}, "
                         f"got {mode!r}")
    return ScenarioSpec.make(
        "market-fig2", seed=seed, mode=mode, n_tasks=n_tasks,
        file_size=float(file_size), compute_seconds=compute_seconds,
        n_events=n_events, horizon=horizon,
        repost_probability=repost_probability, epoch=epoch, alpha=alpha,
        deadband=deadband, alpha_ceil=alpha_ceil,
        budget_bytes=budget_bytes)


def market_mode_specs(seed: int, **kwargs) -> list[ScenarioSpec]:
    """The three-mode comparison unit for one seed (calm first)."""
    return [market_spec(seed, mode, **kwargs) for mode in MARKET_MODES]


def run_market(spec: ScenarioSpec) -> dict:
    """Execute one seeded market scenario; the ``market-fig2`` executor."""
    p = spec.param_dict()
    seed = spec.seed if spec.seed is not None else int(p.get("seed", 0))
    mode = p.get("mode", "controller")
    if mode not in MARKET_MODES:
        raise LookupError(f"unknown market mode {mode!r}")
    # Lazy: repro.metrics aggregates subsystems from above this layer.
    from ..metrics.registry import metrics_registry
    metrics_registry.reset()
    n_tasks = int(p.get("n_tasks", 256))
    file_size = float(p.get("file_size", 64 * MB))
    # Victim capacity ≈ the workload's victim share at the static α, so
    # permanent reclaims push the static path into capacity pressure —
    # the state the α controller prices away by pulling data home.
    config = DeploymentConfig(
        n_own=2, n_victim=4,
        victim_memory=4 * GB, own_store_capacity=24 * GB,
        stripe_size=32 * MB, write_window=2, seed=seed,
    ).with_alpha(float(p.get("alpha", 0.25)))
    dep = MemFSSDeployment(config)
    env = dep.env

    controller = None
    if mode != "calm":
        controller = MarketController(
            env, dep.fs, dep.manager, dep.cluster.reservations,
            dep.placement_policy, epoch=float(p.get("epoch", 2.0)),
            deadband=float(p.get("deadband", 0.05)),
            alpha_ceil=float(p.get("alpha_ceil", 0.75)),
            budget_bytes=p.get("budget_bytes"),
            retune=(mode == "controller"))
        controller.submit_demand("market-fig2", n_tasks * file_size)
        controller.start()
        schedule = build_churn_schedule(
            len(dep.victims), horizon=float(p.get("horizon", 12.0)),
            n_events=int(p.get("n_events", 5)),
            repost_probability=float(p.get("repost_probability", 0.5)),
            stream=dep.rng.stream("market-churn"))
        env.process(_churn(env, dep.manager, controller, dep.victims,
                           schedule, config.victim_memory),
                    name="market-churn")

    workflow = dd_bag(n_tasks=n_tasks, file_size=file_size,
                      compute_seconds=float(p.get("compute_seconds", 2.0)))
    engine = WorkflowEngine(env, dep.fs, gc_intermediates=False)
    result = engine.execute(workflow)
    if controller is not None:
        controller.stop()

    # Read-back audit: every output must come back at full size through
    # whatever placement the churn left behind.  Lost files are the
    # zero-tolerance soak invariant.
    lost: list[str] = []

    def audit():
        agent = dep.own[0]
        for task in workflow.tasks:
            for out in task.outputs:
                try:
                    size, _ = yield from dep.fs.read_file(agent, out.path)
                except Exception:
                    lost.append(out.path)
                    continue
                if size != out.size:
                    lost.append(out.path)

    env.process(audit(), name="market-audit")
    env.run()

    return {
        "seed": seed,
        "mode": mode,
        "makespan_s": float(result.makespan),
        "task_s": {tid: float(r.duration)
                   for tid, r in sorted(result.tasks.items())},
        "alpha_trace": (controller.alpha_trace
                        if controller is not None else []),
        "final_alpha": (controller.alpha if controller is not None
                        else float(p.get("alpha", 0.25))),
        "lost_files": sorted(lost),
        "market": market_stats.snapshot(),
        "pressure": pressure_stats.snapshot(),
    }
