"""The marketplace order book: published memory offers and tenant demands.

Victim reservations *publish* offers — size, lease duration, revocation
notice — and storage consumers *submit* byte demands.  The book is plain
bookkeeping: matching happens in the
:class:`~repro.market.controller.MarketController`, which clears the book
once per epoch in deterministic (sorted, seeded) order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster.node import Node
from .stats import market_stats

__all__ = ["MarketOffer", "TenantDemand", "MarketBook"]


@dataclass
class MarketOffer:
    """One victim node's published memory offer."""

    node: Node
    memory: float
    duration: float | None = None
    notice: float = 0.0
    posted_at: float = 0.0
    granted_at: float | None = None

    @property
    def pending(self) -> bool:
        return self.granted_at is None


@dataclass
class TenantDemand:
    """One consumer's outstanding byte demand."""

    tenant: str
    nbytes: float
    posted_at: float = 0.0


@dataclass
class MarketBook:
    """Offers keyed by node name plus the demand ledger."""

    offers: dict[str, MarketOffer] = field(default_factory=dict)
    demands: list[TenantDemand] = field(default_factory=list)

    def publish(self, node: Node, memory: float, *,
                duration: float | None = None, notice: float = 0.0,
                now: float = 0.0) -> MarketOffer:
        """Post (or repost) an offer for *node*; replaces any stale one."""
        if memory <= 0:
            raise ValueError("memory must be positive")
        offer = MarketOffer(node, float(memory), duration, float(notice),
                            posted_at=now)
        self.offers[node.name] = offer
        market_stats.offers_published += 1
        return offer

    def submit(self, tenant: str, nbytes: float,
               now: float = 0.0) -> TenantDemand:
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        demand = TenantDemand(tenant, float(nbytes), posted_at=now)
        self.demands.append(demand)
        market_stats.demands_submitted += 1
        return demand

    def withdraw(self, node_name: str) -> None:
        self.offers.pop(node_name, None)

    def pending_offers(self) -> list[MarketOffer]:
        """Ungranted offers in deterministic (node-name) order."""
        return [self.offers[name] for name in sorted(self.offers)
                if self.offers[name].pending]

    def demand_total(self) -> float:
        return sum(d.nbytes for d in self.demands)
