"""Typed degraded-mode results for sweep rows (Table II's "Unable to run").

A sweep row that cannot produce numbers — the admission predictor rejects
it up front, or the simulation exhausts capacity / loses stores mid-run —
becomes a :class:`DegradedResult` instead of a traceback.  The reason
taxonomy is deliberately small and stable: it is rendered in table2/CLI
output ("unable to run (capacity-exhausted)"), serialized through the
``repro.exec`` result cache, and asserted on by the chaos soak.

:func:`classify_failure` maps the runtime exceptions a guarded execution
can legally raise onto the taxonomy; anything outside
:data:`DEGRADABLE_ERRORS` is a programming error and must keep raising.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..cluster.container import CapExceeded
from ..cluster.node import OutOfMemory
from ..fs.memfss import FileNotFound, FsError
from ..store import StoreError, StoreErrorCode, StoreFull

__all__ = ["DegradedReason", "DegradedResult", "DEGRADABLE_ERRORS",
           "classify_failure"]


class DegradedReason(str, enum.Enum):
    """Why a sweep row could not produce numbers.

    A ``str`` subclass (like :class:`~repro.store.StoreErrorCode`) so the
    values serialize as plain strings through JSON caches and pickles.
    """

    #: The placement-aware admission predictor rejected the run up front.
    DATA_DOES_NOT_FIT = "data-does-not-fit"
    #: Capacity ran out at runtime even after HRW chain spill.
    CAPACITY_EXHAUSTED = "capacity-exhausted"
    #: Too many stores crashed/unreachable: data was lost mid-run.
    STORES_LOST = "stores-lost"
    #: The run failed under an injected fault schedule.
    FAULT_SCHEDULE = "fault-schedule"
    #: A file-system/workflow failure not covered above.
    WORKFLOW_ERROR = "workflow-error"


@dataclass(frozen=True)
class DegradedResult:
    """A typed "unable to run" outcome, safe to cache, pickle and render."""

    reason: DegradedReason
    detail: str = ""

    def __post_init__(self):
        if not isinstance(self.reason, DegradedReason):
            object.__setattr__(self, "reason", DegradedReason(self.reason))

    def render(self) -> str:
        """The table2/CLI cell: ``unable to run (<reason>)``."""
        return f"unable to run ({self.reason.value})"

    def to_payload(self) -> dict:
        return {"reason": self.reason.value, "detail": self.detail}

    @classmethod
    def from_payload(cls, payload: dict) -> "DegradedResult":
        return cls(reason=DegradedReason(payload["reason"]),
                   detail=payload.get("detail", ""))


#: Exception types a guarded sweep row may degrade on.  Everything else
#: (TypeError, assertion failures, ...) is a bug and propagates.
DEGRADABLE_ERRORS = (StoreError, StoreFull, CapExceeded, OutOfMemory,
                     FsError)


def classify_failure(exc: BaseException, *,
                     faulted: bool = False) -> DegradedResult:
    """Map a degradable runtime failure onto the reason taxonomy.

    With *faulted* true (a fault schedule was active), losses that trace
    back to dead stores are attributed to ``FAULT_SCHEDULE`` rather than
    ``STORES_LOST``.
    """
    detail = f"{type(exc).__name__}: {exc}"
    if isinstance(exc, StoreError):
        if exc.code is StoreErrorCode.FULL:
            return DegradedResult(DegradedReason.CAPACITY_EXHAUSTED, detail)
        if exc.code in (StoreErrorCode.UNAVAILABLE, StoreErrorCode.TIMEOUT):
            reason = (DegradedReason.FAULT_SCHEDULE if faulted
                      else DegradedReason.STORES_LOST)
            return DegradedResult(reason, detail)
        return DegradedResult(DegradedReason.WORKFLOW_ERROR, detail)
    if isinstance(exc, (StoreFull, CapExceeded, OutOfMemory)):
        return DegradedResult(DegradedReason.CAPACITY_EXHAUSTED, detail)
    if isinstance(exc, FileNotFound):
        reason = (DegradedReason.FAULT_SCHEDULE if faulted
                  else DegradedReason.STORES_LOST)
        return DegradedResult(reason, detail)
    return DegradedResult(DegradedReason.WORKFLOW_ERROR, detail)
