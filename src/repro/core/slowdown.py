"""Slowdown measurement: paired tenant runs with and without scavenging.

The paper's Figs. 3-5 report, per tenant benchmark, the runtime ratio
between a run while MemFSS scavenges the tenant's nodes and an undisturbed
run.  Here both runs use identical seeds and fresh deployments so the only
difference is the scavenging traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..tenants import PhasedWorkload, TenantRun, run_tenant
from ..workflows import Workflow
from .deployment import DeploymentConfig, MemFSSDeployment

__all__ = ["SlowdownResult", "measure_slowdowns", "average_slowdown",
           "BackgroundWorkload"]


@dataclass
class SlowdownResult:
    """Per-benchmark baseline/loaded runtimes and the slowdown percent."""

    benchmark: str
    baseline_s: float
    loaded_s: float

    @property
    def slowdown_pct(self) -> float:
        if self.baseline_s <= 0:
            return 0.0
        return (self.loaded_s / self.baseline_s - 1.0) * 100.0


def average_slowdown(results: list[SlowdownResult]) -> float:
    """Mean slowdown percentage across benchmarks (Fig. 6)."""
    if not results:
        return 0.0
    return sum(r.slowdown_pct for r in results) / len(results)


class BackgroundWorkload:
    """Loops a MemFSS workflow on the own nodes for the experiment's
    duration.

    Mirrors the mid-execution state of the paper's co-location runs:
    first a **resident set** is written so the victim stores hold a
    steady multi-GB footprint (a long-running workflow's live
    intermediate data — the memory-capacity channel behind DFSIO-read's
    page-cache and Spark's GC effects), then the workflow loops, its
    outputs unlinked between iterations so the transient traffic stays
    steady without ever exceeding capacity.
    """

    RESIDENT_PREFIX = "/resident"

    def __init__(self, deployment: MemFSSDeployment,
                 workflow_factory: Callable[[int], Workflow],
                 resident_bytes: float | None = None,
                 slots_per_node: int = 8):
        self.deployment = deployment
        self.workflow_factory = workflow_factory
        if resident_bytes is None:
            # 80% of the offer: a steady multi-GB footprint; the loop
            # below tolerates transient overflows of the remaining
            # headroom (victim placement is balanced, not perfect).
            cfg = deployment.config
            resident_bytes = 0.8 * cfg.n_victim * cfg.victim_memory
        self.resident_bytes = resident_bytes
        # A background loop needs steady traffic, not task concurrency;
        # fewer slots keep the event count (and wall time) down without
        # changing the FUSE-bound throughput.
        from ..workflows import WorkflowEngine
        self.engine = WorkflowEngine(deployment.env, deployment.fs,
                                     slots_per_node=slots_per_node)
        self.iterations = 0
        self._stop = False
        self._proc = None

    def start(self) -> None:
        self._prefill()
        env = self.deployment.env
        self._proc = env.process(self._loop(), name="background-workflow")

    def stop(self) -> None:
        self._stop = True

    def _prefill(self) -> None:
        """Instantly install the resident set on the victim stores.

        This is experiment *setup* — the state a long-running workflow
        would have accumulated before the tenant measurement starts — so
        it costs no simulated time (and no wall time to speak of).
        """
        if self.resident_bytes <= 0 or not self.deployment.victims:
            return
        fs = self.deployment.fs
        per_victim = self.resident_bytes / len(self.deployment.victims)
        for v in self.deployment.victims:
            server = fs.servers.get(v.name)
            if server is None:
                continue
            fill = min(per_victim,
                       server.kv.free_bytes - server.kv.key_overhead)
            if fill <= 0:
                continue
            server.kv.put(("resident", v.name), nbytes=fill)
            server._sync_memory()

    def _loop(self):
        from ..store import StoreError, StoreErrorCode
        eng = self.engine
        fs = self.deployment.fs
        agent = fs.own_nodes[0]
        while not self._stop:
            wf = self.workflow_factory(self.iterations)
            try:
                yield from eng.stage_in(wf)
                yield from eng.run(wf)
            except StoreError as exc:
                # Mis-addressed requests would loop forever here; anything
                # capacity- or availability-shaped (a store filled up on
                # nearly-full victims, a victim died mid-iteration) is the
                # expected churn of background load: the real system
                # backpressures; we clean this iteration's files and
                # carry on.
                if exc.code in (StoreErrorCode.AUTH,
                                StoreErrorCode.BAD_REQUEST):
                    raise
            self.iterations += 1
            # Clear the iteration's files (the resident set stays).
            paths = yield from fs.list_all_files(agent)
            for path in paths:
                if self._stop:
                    break
                if path.startswith(self.RESIDENT_PREFIX):
                    continue
                try:
                    yield from fs.unlink(agent, path)
                except Exception:
                    continue


def _run_suite(deployment: MemFSSDeployment,
               suite: list[PhasedWorkload]) -> dict[str, float]:
    """Run the benchmarks back-to-back on the victim nodes; return
    per-benchmark runtimes."""
    env = deployment.env
    times: dict[str, float] = {}

    def driver():
        for wl in suite:
            run: TenantRun = yield from run_tenant(
                env, wl, deployment.victims, deployment.cluster.fabric,
                deployment.probe, owner=f"tenant:{wl.name}")
            times[wl.name] = run.runtime

    proc = env.process(driver(), name="tenant-suite")
    env.run(until=proc)
    return times


def measure_slowdowns(config: DeploymentConfig,
                      suite_factory: Callable[[int], list[PhasedWorkload]],
                      workflow_factory: Callable[[int], Workflow] | None,
                      warmup: float = 60.0) -> list[SlowdownResult]:
    """Fig. 3/4/5 harness.

    Two fresh deployments with identical *config*: the baseline runs the
    tenant suite with the scavenging stores idle; the loaded run loops
    *workflow_factory* on the own nodes throughout, given *warmup*
    simulated seconds to reach steady state before the suite starts (the
    real experiments also measure against an already-running workflow).
    Returns one :class:`SlowdownResult` per benchmark.
    """
    # Baseline: same deployment shape, no MemFSS traffic.
    base = MemFSSDeployment(config)
    base_times = _run_suite(base, suite_factory(len(base.victims)))

    loaded = MemFSSDeployment(config)
    background = None
    if workflow_factory is not None:
        background = BackgroundWorkload(loaded, workflow_factory)
        background.start()
        loaded.env.run(until=loaded.env.now + warmup)
    loaded_times = _run_suite(loaded, suite_factory(len(loaded.victims)))
    if background is not None:
        background.stop()

    return [SlowdownResult(benchmark=name,
                           baseline_s=base_times[name],
                           loaded_s=loaded_times[name])
            for name in base_times]
