"""Resource-consumption experiment (paper §IV-D, Table II and Fig. 7).

Compares a *standalone* MemFS run — enough nodes reserved that the whole
data footprint fits in their memory — against *scavenging* MemFSS runs
with a handful of own nodes and victim memory making up the difference.
Node-hours count only the nodes the user reserves (the victims belong to
other tenants; that is the whole point).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster import build_das5
from ..fs import build_memfs, pressure_stats
from ..store import StoreServer
from ..units import GB
from ..workflows import Workflow, WorkflowEngine
from .admission import predict_admission
from .degraded import DEGRADABLE_ERRORS, DegradedReason, DegradedResult, \
    classify_failure
from .deployment import DeploymentConfig, MemFSSDeployment

__all__ = ["ConsumptionPoint", "run_standalone", "run_scavenging",
           "footprint_of", "normalized"]


@dataclass
class ConsumptionPoint:
    """One Table II row."""

    label: str
    n_nodes: int            # nodes the user reserves (own nodes)
    fits: bool
    runtime_s: float = float("nan")
    node_hours: float = float("nan")
    #: Why the row produced no numbers (None when fits).  Typed, so the
    #: CLI renders "unable to run (<reason>)" instead of a traceback.
    degraded: DegradedResult | None = None

    def normalized_against(self, base: "ConsumptionPoint",
                           ) -> tuple[float, float]:
        """(normalized runtime, normalized node-hours) vs. *base* (Fig. 7)."""
        return (self.runtime_s / base.runtime_s,
                self.node_hours / base.node_hours)


def _degraded_point(label: str, n_nodes: int,
                    degraded: DegradedResult) -> ConsumptionPoint:
    pressure_stats.degraded_rows += 1
    return ConsumptionPoint(label=label, n_nodes=n_nodes, fits=False,
                            degraded=degraded)


def footprint_of(workflow: Workflow, key_overhead: float = 4096.0) -> float:
    """The no-GC data footprint: staged inputs + everything written.

    *key_overhead* is a per-file allowance for stripe/metadata overheads.
    """
    staged = {}
    for t in workflow.tasks.values():
        for f in t.inputs:
            if workflow.producer_of(f.path) is None:
                staged[f.path] = f.nbytes
    n_files = len(staged) + sum(len(t.outputs)
                                for t in workflow.tasks.values())
    return (sum(staged.values()) + workflow.total_output_bytes
            + n_files * key_overhead)


#: Safety margin for the placement-aware admission predictor
#: (:func:`~repro.core.admission.predict_admission`): each store's budget
#: is scaled by ``1 - IMBALANCE_HEADROOM`` to absorb the prediction's
#: approximations (output inode ordering, runtime metadata).  It is *not*
#: a fits-check by itself any more — admission bin-packs the actual
#: stripe plan per store.
IMBALANCE_HEADROOM = 0.08


def run_standalone(workflow: Workflow, n_nodes: int,
                   store_capacity: float = 56 * GB,
                   stripe_size: int = 32 * 1024 * 1024,
                   seed: int = 0) -> ConsumptionPoint:
    """Uniform MemFS on *n_nodes* (tasks + data everywhere), no GC.

    Admission bin-packs the workflow's stripe plan against the per-node
    stores; a rejected row is Table II's "Unable to run, data does not
    fit".  An admitted row that still exhausts capacity (or loses data)
    at runtime degrades to a typed reason instead of raising.
    """
    label = f"standalone-{n_nodes}"
    cluster = build_das5(n_nodes=n_nodes, seed=seed)
    env = cluster.env
    nodes = list(cluster.nodes)
    servers = {n.name: StoreServer(env, n, cluster.fabric,
                                   capacity=store_capacity,
                                   name=f"own@{n.name}")
               for n in nodes}
    fs = build_memfs(env, cluster.fabric, nodes, servers,
                     stripe_size=stripe_size, write_window=2)
    report = predict_admission(workflow, fs)
    if not report.fits:
        return _degraded_point(label, n_nodes, DegradedResult(
            DegradedReason.DATA_DOES_NOT_FIT, report.detail))
    engine = WorkflowEngine(env, fs, gc_intermediates=False)
    try:
        result = engine.execute(workflow)
    except DEGRADABLE_ERRORS as exc:
        return _degraded_point(label, n_nodes, classify_failure(exc))
    return ConsumptionPoint(
        label=label, n_nodes=n_nodes, fits=True,
        runtime_s=result.makespan,
        node_hours=n_nodes * result.makespan / 3600.0)


def run_scavenging(workflow: Workflow, n_own: int, n_victim: int,
                   victim_memory: float,
                   own_store_capacity: float = 56 * GB,
                   alpha: float | None = None,
                   stripe_size: int = 32 * 1024 * 1024,
                   seed: int = 0) -> ConsumptionPoint:
    """MemFSS with *n_own* own nodes scavenging *n_victim* victims, no GC.

    α defaults to the capacity-proportional split (each node class holds
    data in proportion to what it can store), the balanced choice §IV-B
    motivates.  Admission and degradation follow :func:`run_standalone`:
    bin-packed prediction up front, typed degraded result on runtime
    capacity/loss failures.
    """
    label = f"scavenging-{n_own}"
    own_cap = n_own * own_store_capacity
    victim_cap = n_victim * victim_memory
    if alpha is None:
        alpha = own_cap / (own_cap + victim_cap)
    config = DeploymentConfig(
        n_own=n_own, n_victim=n_victim,
        victim_memory=victim_memory,
        own_store_capacity=own_store_capacity,
        stripe_size=stripe_size, seed=seed).with_alpha(alpha)
    deployment = MemFSSDeployment(config)
    report = predict_admission(workflow, deployment.fs)
    if not report.fits:
        return _degraded_point(label, n_own, DegradedResult(
            DegradedReason.DATA_DOES_NOT_FIT, report.detail))
    engine = WorkflowEngine(deployment.env, deployment.fs,
                            gc_intermediates=False)
    try:
        result = engine.execute(workflow)
    except DEGRADABLE_ERRORS as exc:
        return _degraded_point(label, n_own, classify_failure(exc))
    return ConsumptionPoint(
        label=label, n_nodes=n_own, fits=True,
        runtime_s=result.makespan,
        node_hours=n_own * result.makespan / 3600.0)


def normalized(points: list[ConsumptionPoint], base: ConsumptionPoint,
               ) -> list[dict]:
    """Fig. 7 rows: normalized runtime and node-hours per point."""
    rows = []
    for p in points:
        if not p.fits:
            rows.append({"label": p.label, "n_nodes": p.n_nodes,
                         "fits": False})
            continue
        nr, nh = p.normalized_against(base)
        rows.append({"label": p.label, "n_nodes": p.n_nodes, "fits": True,
                     "runtime_s": p.runtime_s, "node_hours": p.node_hours,
                     "norm_runtime": nr, "norm_node_hours": nh})
    return rows
