"""Placement-aware admission control for consumption rows (Table II).

The old fits-check compared the workflow's *aggregate* footprint (plus a
fudge factor) against *aggregate* capacity — which both under- and
over-admitted: real HRW placement overflows individual stores by
stripe-granularity slivers long before the aggregate runs out (the
ROADMAP's ``scavenging-4`` crash), while runs the aggregate check
rejected could in fact complete thanks to chain spill.

:func:`predict_admission` instead *bin-packs the actual stripe plan*:
it replays the workflow's predicted file sequence through the file
system's own batch planner (:meth:`~repro.fs.placement.PlacementMap
.plan_file`), charges every stripe (and parity block and replica) to its
planned store, and models the write path's capacity spill down the HRW
chain when a store's budget runs out.  ``fits`` therefore means: *under
this placement, with spill, every stripe finds a store*.

``headroom`` survives only as a documented safety margin: each store's
budget is its capacity scaled by ``1 - headroom``.  It covers the two
ways the prediction is approximate — output-file inode order depends on
the runtime schedule (staged inputs are exact; task outputs are replayed
in task order), and runtime metadata (directory sets, the file registry)
is modeled as a flat per-file allowance — plus transient double-residency
during evacuations.  The default is
:data:`~repro.core.consumption.IMBALANCE_HEADROOM`.

Under the lease marketplace a store's bytes are only as good as its
lease: pass the scavenger's ``leases`` map (and the current time) and
each leased store's budget is scaled by its revocation-risk discount
(:func:`repro.market.risk.lease_discount`) — a lease nearing expiry, or
one whose notice period is too short to drain, contributes a fraction of
its nominal capacity, and a store already serving its notice contributes
none.  Legacy open-ended leases price at full value, so pre-market
deployments see byte-identical admission decisions.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..fs.capacity import pressure_stats
from ..fs.memfss import MemFSS
from ..fs.metadata import file_meta_key
from ..fs.erasure import group_layout
from ..fs.striping import stripe_count, stripe_spans
from ..workflows import Workflow

__all__ = ["AdmissionReport", "predict_admission", "predicted_files"]

#: Flat per-file allowance for metadata (FileMeta record, directory
#: entry, registry entry), charged to the file's metadata server.
META_OVERHEAD = 4096.0


@dataclass(frozen=True)
class AdmissionReport:
    """Outcome of one placement-aware admission check."""

    fits: bool
    detail: str = ""
    n_files: int = 0
    n_stripes: int = 0
    spilled_stripes: int = 0     # stripes placed below their ideal rank
    unplaced_stripes: int = 0    # stripes no store could admit
    worst_store: str = ""
    worst_fill: float = 0.0      # predicted fill fraction of that store
    headroom: float = 0.0
    risk_discounted: int = 0     # stores priced below their full capacity


def predicted_files(workflow: Workflow) -> list[tuple[str, float]]:
    """``(path, nbytes)`` of every file the run creates, in predicted
    creation order: staged external inputs in sorted-path order (exactly
    what :meth:`~repro.workflows.engine.WorkflowEngine.stage_in` does),
    then task outputs in task order (an approximation of the runtime
    completion order — covered by the predictor's headroom)."""
    staged: dict[str, float] = {}
    for t in workflow.tasks.values():
        for f in t.inputs:
            if workflow.producer_of(f.path) is None:
                staged.setdefault(f.path, float(f.nbytes))
    files = [(path, staged[path]) for path in sorted(staged)]
    for t in workflow.tasks.values():
        files.extend((f.path, float(f.nbytes)) for f in t.outputs)
    return files


def _stripe_lengths(size: float, fs: MemFSS) -> list[float]:
    """Per-key payload length in plan order (stripes, then parity)."""
    lengths = [float(s.length) for s in stripe_spans(int(size),
                                                     fs.stripe_size)]
    if fs.erasure is not None:
        k, m = fs.erasure
        for first, count in group_layout(len(lengths), k):
            plen = max(lengths[first:first + count], default=0.0)
            lengths.extend([plen] * m)
    return lengths


def predict_admission(workflow: Workflow, fs: MemFSS,
                      headroom: float | None = None, *,
                      leases=None, now: float = 0.0,
                      risk_horizon: float | None = None,
                      short_notice: float | None = None) -> AdmissionReport:
    """Bin-pack the workflow's stripe plans against per-store budgets.

    Assumes a no-GC run (everything written stays resident — the
    conservative Table II regime).  Pure Python over the planner: no
    simulation state is touched and the file system's inode counter is
    not consumed.

    *leases* (the scavenger's ``{node_name: ScavengeLease}`` map) turns
    on revocation-risk pricing: each leased store's usable capacity is
    scaled by its risk discount at time *now* before budgets are drawn.
    Left ``None`` (the default) every store is priced at full value and
    the prediction is unchanged from the pre-market behavior.
    """
    if headroom is None:
        from .consumption import IMBALANCE_HEADROOM
        headroom = IMBALANCE_HEADROOM
    if not 0.0 <= headroom < 1.0:
        raise ValueError("headroom must be in [0, 1)")
    discounts: dict[str, float] = {}
    if leases:
        # Lazy: repro.market sits above core in the layering.
        from ..market.risk import (DEFAULT_RISK_HORIZON,
                                   DEFAULT_SHORT_NOTICE, node_discounts)
        discounts = node_discounts(
            leases, now,
            horizon=(risk_horizon if risk_horizon is not None
                     else DEFAULT_RISK_HORIZON),
            short_notice=(short_notice if short_notice is not None
                          else DEFAULT_SHORT_NOTICE))
    pressure_stats.admission_checks += 1
    policy = fs.policy
    servers = fs.servers
    budgets: dict[str, float] = {}
    overhead: dict[str, float] = {}
    risk_discounted = 0
    for name in policy.all_nodes:
        server = servers.get(name)
        if server is None:
            continue
        discount = discounts.get(name, 1.0)
        if discount < 1.0:
            risk_discounted += 1
        budgets[name] = (server.kv.capacity * discount * (1.0 - headroom)
                         - server.kv.used_bytes)
        overhead[name] = server.kv.key_overhead

    files = predicted_files(workflow)
    want = fs.replication
    spilled = unplaced = n_stripes = 0
    first_failure = ""
    for inode, (path, nbytes) in enumerate(files, start=1):
        n = stripe_count(int(nbytes), fs.stripe_size)
        plan = policy.plan_file(inode, n, erasure=fs.erasure)
        lengths = _stripe_lengths(nbytes, fs)
        n_stripes += len(lengths)
        for idx in range(len(plan.keys)):
            cost = lengths[idx]
            planned = plan.chain(idx, k=want)
            if all(budgets.get(t, 0.0) >= cost + overhead.get(t, 0.0)
                   for t in planned):
                for t in planned:
                    budgets[t] -= cost + overhead[t]
                continue
            # Model the write path's capacity spill down the full chain.
            placed = 0
            top = set(planned)
            for t in plan.chain(idx):
                if budgets.get(t, 0.0) >= cost + overhead.get(t, 0.0):
                    budgets[t] -= cost + overhead[t]
                    placed += 1
                    if t not in top:
                        spilled += 1
                    if placed >= want:
                        break
            if placed == 0:
                unplaced += 1
                if not first_failure:
                    first_failure = (
                        f"stripe {idx} of {path!r} ({cost:.3g} B): no "
                        f"store has budget left")
        # Metadata allowance on the file's meta server.
        meta_node = fs.meta_placer.place(file_meta_key(path))
        if budgets.get(meta_node, 0.0) >= META_OVERHEAD:
            budgets[meta_node] -= META_OVERHEAD
        else:
            unplaced += 1
            if not first_failure:
                first_failure = (f"metadata of {path!r}: server "
                                 f"{meta_node} has no budget left")

    worst_store, worst_fill = "", 0.0
    for name, budget in budgets.items():
        capacity = servers[name].kv.capacity
        usable = capacity * discounts.get(name, 1.0) * (1.0 - headroom)
        fill = (usable - budget) / capacity
        if fill > worst_fill:
            worst_store, worst_fill = name, fill
    fits = unplaced == 0
    if not fits:
        pressure_stats.admission_rejections += 1
    detail = "" if fits else (
        f"{unplaced} of {n_stripes} stripes unplaceable under "
        f"headroom {headroom:.0%}; first: {first_failure}")
    return AdmissionReport(
        fits=fits, detail=detail, n_files=len(files), n_stripes=n_stripes,
        spilled_stripes=spilled, unplaced_stripes=unplaced,
        worst_store=worst_store, worst_fill=worst_fill, headroom=headroom,
        risk_discounted=risk_discounted)
