"""MemFSS deployment assembly (the paper's experimental setup, §IV-A).

A :class:`MemFSSDeployment` wires one experiment's worth of system:
a DAS-5-like cluster, an *own* reservation running MemFSS + tasks, a
*tenant* reservation whose nodes are registered on the secondary queue,
containerized victim stores claimed through the
:class:`~repro.fs.scavenger.ScavengingManager`, and the weighted two-layer
placement realizing the requested own-data fraction α.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace

from ..cluster import (Cluster, Container, ResourceCaps, build_das5)
from ..fs import MemFSS, ScavengingManager
from ..sim import Environment
from ..sim.rng import RngRegistry
from ..store import AuthPolicy, RetryPolicy, StoreCostModel, StoreServer
from ..tenants import InterferenceProbe
from ..units import GB, MB
from ..workflows import WorkflowEngine
from .policy import PlacementPolicy

__all__ = ["DeploymentConfig", "MemFSSDeployment"]

#: Legacy placement knobs and their defaults: still accepted for one
#: release, resolved into a PlacementPolicy by DeploymentConfig.placement().
_LEGACY_PLACEMENT_DEFAULTS = {"alpha": 0.25, "capacity_guard": True,
                              "replication": 1, "erasure": None}


@dataclass(frozen=True)
class DeploymentConfig:
    """Knobs of one deployment (defaults = the paper's Fig. 2/3/4 setup)."""

    n_own: int = 8
    n_victim: int = 32
    alpha: float = 0.25              # fraction of data on own nodes
    victim_memory: float = 10 * GB   # scavenged cap per victim (§IV-A)
    own_store_capacity: float = 56 * GB
    stripe_size: int = 32 * MB
    replication: int = 1
    erasure: tuple[int, int] | None = None
    write_window: int = 2
    # Capacity-aware write path: consult store free space and spill down
    # the HRW chain instead of raising StoreFull.  Off reproduces the
    # pre-guard crash-on-full behavior (used by the overhead benchmark).
    capacity_guard: bool = True
    password: str = "memfss-secret"
    seed: int = 0
    # Store-client resilience posture: per-op deadline (seconds of
    # virtual time), retry attempts over the default backoff policy, and
    # the hedged-read delay (None disables hedging).
    io_deadline: float | None = None
    io_retries: int = 3
    io_hedge: float | None = None
    # Flow-solver mode for the fabric: None → FlowNetwork's default
    # ("incremental"); "reference" retains the full-recompute path for
    # perf comparisons; "auto" picks per flush (bit-identical
    # trajectories in every mode).
    solver: str | None = None
    # Cluster scale multiplier: n_own and n_victim are both multiplied
    # by `scale` when the deployment is built (DAS-5 ×16 → 1088 nodes).
    # Kept as a separate knob so figure recipes stay written in paper
    # units and the sweep cache keys change only through scaled().
    scale: int = 1
    # The unified placement policy.  When set it is authoritative for
    # classes / fractions / hash family / capacity guard / redundancy,
    # and the legacy knobs above (alpha, capacity_guard, replication,
    # erasure) must be left at their defaults or agree with it.
    policy: PlacementPolicy | None = None

    def __post_init__(self):
        if self.n_own < 1:
            raise ValueError("n_own must be >= 1")
        if self.n_victim < 0:
            raise ValueError("n_victim must be >= 0")
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        if self.scale < 1:
            raise ValueError("scale must be >= 1")
        if self.policy is not None:
            self._check_policy_consistency()

    def _check_policy_consistency(self) -> None:
        """A legacy knob moved off its default AND off the policy's value
        is a stale-knob bug (the policy would silently win); refuse it."""
        pol = self.policy
        pol_values = {"alpha": pol.alpha if pol.alpha is not None
                      else _LEGACY_PLACEMENT_DEFAULTS["alpha"],
                      "capacity_guard": pol.capacity_guard,
                      "replication": pol.replication,
                      "erasure": pol.erasure}
        for knob, default in _LEGACY_PLACEMENT_DEFAULTS.items():
            value = getattr(self, knob)
            if value != default and value != pol_values[knob]:
                raise ValueError(
                    f"DeploymentConfig.{knob}={value!r} conflicts with "
                    f"policy ({pol_values[knob]!r}); set placement knobs "
                    f"on the PlacementPolicy only")

    def scaled(self) -> "DeploymentConfig":
        """Resolve the scale multiplier into explicit node counts."""
        if self.scale == 1:
            return self
        return replace(self, n_own=self.n_own * self.scale,
                       n_victim=self.n_victim * self.scale, scale=1)

    # -- placement resolution ----------------------------------------------------
    def _legacy_policy(self) -> PlacementPolicy:
        """The policy equivalent to the legacy knobs (closed-form weights
        — byte-identical to the pre-policy ``own_victim_weights`` path)."""
        return PlacementPolicy.own_victim(
            self.alpha, capacity_guard=self.capacity_guard,
            replication=self.replication, erasure=self.erasure)

    def placement(self) -> PlacementPolicy:
        """The effective :class:`PlacementPolicy` of this deployment.

        Configs without an explicit policy resolve their legacy knobs
        into one; using those knobs off their defaults draws a
        one-release :class:`DeprecationWarning` (pass ``policy=`` —
        e.g. via :meth:`with_alpha` — instead).
        """
        if self.policy is not None:
            return self.policy
        legacy = {k: getattr(self, k)
                  for k, d in _LEGACY_PLACEMENT_DEFAULTS.items()
                  if getattr(self, k) != d}
        if legacy:
            warnings.warn(
                f"DeploymentConfig placement knobs {sorted(legacy)} are "
                f"deprecated (one release): pass "
                f"policy=PlacementPolicy.own_victim(...) or use "
                f"with_alpha()", DeprecationWarning, stacklevel=2)
        return self._legacy_policy()

    def with_alpha(self, alpha: float) -> "DeploymentConfig":
        """This config retargeted to own-fraction *alpha* — the α-sweep
        primitive.  Works on policy and legacy configs alike; the result
        always carries an explicit policy (no deprecation warning)."""
        pol = self.policy if self.policy is not None \
            else self._legacy_policy()
        return replace(self, alpha=alpha,
                       policy=pol.with_fraction("own", alpha))


class MemFSSDeployment:
    """A fully wired experiment: cluster + FS + scavenged victims."""

    def __init__(self, config: DeploymentConfig | None = None,
                 env: Environment | None = None):
        # A shared mutable default instance would alias state across
        # deployments; build a fresh config per call instead.
        config = config if config is not None else DeploymentConfig()
        config = config.scaled()
        self.config = config
        self.rng = RngRegistry(config.seed)
        self.cluster: Cluster = build_das5(
            env, n_nodes=config.n_own + config.n_victim, seed=config.seed,
            solver=config.solver)
        self.env = self.cluster.env
        res = self.cluster.reservations

        # Own reservation: these nodes run tasks and store data.
        self.own_reservation = res.reserve("memfss", config.n_own)
        self.own = list(self.own_reservation.nodes)
        auth = AuthPolicy(config.password,
                          allowed_nodes=[n.name for n in self.own])
        self.auth = auth
        servers = {
            n.name: StoreServer(self.env, n, self.cluster.fabric,
                                capacity=config.own_store_capacity,
                                name=f"own@{n.name}", auth=auth)
            for n in self.own}

        pol = config.placement()
        self.placement_policy = pol
        weights = pol.weights()
        policy = pol.materialize(
            {"own": tuple(n.name for n in self.own)})
        self.fs = MemFSS(self.env, self.cluster.fabric, self.own, servers,
                         policy, password=config.password,
                         stripe_size=config.stripe_size,
                         replication=pol.replication,
                         erasure=pol.erasure,
                         write_window=config.write_window,
                         capacity_guard=pol.capacity_guard,
                         io_deadline=config.io_deadline,
                         io_retry=RetryPolicy(attempts=max(
                             1, config.io_retries)),
                         io_hedge=config.io_hedge,
                         rng=self.rng)

        # Tenant reservation: victims registered on the secondary queue
        # (admin-enforced cap, §III-A mechanism 2).
        self.victims: list = []
        self.manager = ScavengingManager(
            self.env, self.fs, res, auth=auth,
            caps=ResourceCaps(memory=config.victim_memory))
        self.tenant_reservation = None
        if config.n_victim > 0:
            self.tenant_reservation = res.reserve("tenant", config.n_victim)
            self.victims = list(self.tenant_reservation.nodes)
            res.enforce_scavenging(config.victim_memory)
            if "victim" in weights:
                self.manager.scavenge(self.victims, config.victim_memory,
                                      weights["victim"],
                                      class_name="victim")
        self.engine = WorkflowEngine(self.env, self.fs)
        self.probe = InterferenceProbe.from_servers(self.fs.servers)

    # -- convenience --------------------------------------------------------------
    @property
    def servers(self):
        return self.fs.servers

    def own_class_utilization(self) -> dict[str, float]:
        """Time-averaged CPU / NIC utilization of the own class so far."""
        return self._class_utilization(self.own)

    def victim_class_utilization(self) -> dict[str, float]:
        return self._class_utilization(self.victims)

    def _class_utilization(self, nodes) -> dict[str, float]:
        t = self.env.now
        if t <= 0 or not nodes:
            return {"cpu": 0.0, "tx": 0.0, "rx": 0.0}
        net = self.cluster.fabric.net
        return {
            "cpu": sum(n.cpu.busy_time() for n in nodes) / len(nodes) / t,
            "tx": sum(net.busy_time(n.tx) for n in nodes) / len(nodes) / t,
            "rx": sum(net.busy_time(n.rx) for n in nodes) / len(nodes) / t,
        }
