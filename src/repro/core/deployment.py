"""MemFSS deployment assembly (the paper's experimental setup, §IV-A).

A :class:`MemFSSDeployment` wires one experiment's worth of system:
a DAS-5-like cluster, an *own* reservation running MemFSS + tasks, a
*tenant* reservation whose nodes are registered on the secondary queue,
containerized victim stores claimed through the
:class:`~repro.fs.scavenger.ScavengingManager`, and the weighted two-layer
placement realizing the requested own-data fraction α.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..cluster import (Cluster, Container, ResourceCaps, build_das5)
from ..fs import ClassSpec, MemFSS, PlacementPolicy, ScavengingManager
from ..hashing import own_victim_weights
from ..sim import Environment
from ..sim.rng import RngRegistry
from ..store import AuthPolicy, RetryPolicy, StoreCostModel, StoreServer
from ..tenants import InterferenceProbe
from ..units import GB, MB
from ..workflows import WorkflowEngine

__all__ = ["DeploymentConfig", "MemFSSDeployment"]


@dataclass(frozen=True)
class DeploymentConfig:
    """Knobs of one deployment (defaults = the paper's Fig. 2/3/4 setup)."""

    n_own: int = 8
    n_victim: int = 32
    alpha: float = 0.25              # fraction of data on own nodes
    victim_memory: float = 10 * GB   # scavenged cap per victim (§IV-A)
    own_store_capacity: float = 56 * GB
    stripe_size: int = 32 * MB
    replication: int = 1
    erasure: tuple[int, int] | None = None
    write_window: int = 2
    # Capacity-aware write path: consult store free space and spill down
    # the HRW chain instead of raising StoreFull.  Off reproduces the
    # pre-guard crash-on-full behavior (used by the overhead benchmark).
    capacity_guard: bool = True
    password: str = "memfss-secret"
    seed: int = 0
    # Store-client resilience posture: per-op deadline (seconds of
    # virtual time), retry attempts over the default backoff policy, and
    # the hedged-read delay (None disables hedging).
    io_deadline: float | None = None
    io_retries: int = 3
    io_hedge: float | None = None
    # Flow-solver mode for the fabric: None → FlowNetwork's default
    # ("incremental"); "reference" retains the full-recompute path for
    # perf comparisons; "auto" picks per flush (bit-identical
    # trajectories in every mode).
    solver: str | None = None
    # Cluster scale multiplier: n_own and n_victim are both multiplied
    # by `scale` when the deployment is built (DAS-5 ×16 → 1088 nodes).
    # Kept as a separate knob so figure recipes stay written in paper
    # units and the sweep cache keys change only through scaled().
    scale: int = 1

    def __post_init__(self):
        if self.n_own < 1:
            raise ValueError("n_own must be >= 1")
        if self.n_victim < 0:
            raise ValueError("n_victim must be >= 0")
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        if self.scale < 1:
            raise ValueError("scale must be >= 1")

    def scaled(self) -> "DeploymentConfig":
        """Resolve the scale multiplier into explicit node counts."""
        if self.scale == 1:
            return self
        return replace(self, n_own=self.n_own * self.scale,
                       n_victim=self.n_victim * self.scale, scale=1)


class MemFSSDeployment:
    """A fully wired experiment: cluster + FS + scavenged victims."""

    def __init__(self, config: DeploymentConfig | None = None,
                 env: Environment | None = None):
        # A shared mutable default instance would alias state across
        # deployments; build a fresh config per call instead.
        config = config if config is not None else DeploymentConfig()
        config = config.scaled()
        self.config = config
        self.rng = RngRegistry(config.seed)
        self.cluster: Cluster = build_das5(
            env, n_nodes=config.n_own + config.n_victim, seed=config.seed,
            solver=config.solver)
        self.env = self.cluster.env
        res = self.cluster.reservations

        # Own reservation: these nodes run tasks and store data.
        self.own_reservation = res.reserve("memfss", config.n_own)
        self.own = list(self.own_reservation.nodes)
        auth = AuthPolicy(config.password,
                          allowed_nodes=[n.name for n in self.own])
        self.auth = auth
        servers = {
            n.name: StoreServer(self.env, n, self.cluster.fabric,
                                capacity=config.own_store_capacity,
                                name=f"own@{n.name}", auth=auth)
            for n in self.own}

        weights = own_victim_weights(config.alpha)
        policy = PlacementPolicy({
            "own": ClassSpec(weights["own"],
                             tuple(n.name for n in self.own))})
        self.fs = MemFSS(self.env, self.cluster.fabric, self.own, servers,
                         policy, password=config.password,
                         stripe_size=config.stripe_size,
                         replication=config.replication,
                         erasure=config.erasure,
                         write_window=config.write_window,
                         capacity_guard=config.capacity_guard,
                         io_deadline=config.io_deadline,
                         io_retry=RetryPolicy(attempts=max(
                             1, config.io_retries)),
                         io_hedge=config.io_hedge,
                         rng=self.rng)

        # Tenant reservation: victims registered on the secondary queue
        # (admin-enforced cap, §III-A mechanism 2).
        self.victims: list = []
        self.manager = ScavengingManager(
            self.env, self.fs, res, auth=auth,
            caps=ResourceCaps(memory=config.victim_memory))
        self.tenant_reservation = None
        if config.n_victim > 0:
            self.tenant_reservation = res.reserve("tenant", config.n_victim)
            self.victims = list(self.tenant_reservation.nodes)
            res.enforce_scavenging(config.victim_memory)
            self.manager.scavenge(self.victims, config.victim_memory,
                                  weights["victim"], class_name="victim")
        self.engine = WorkflowEngine(self.env, self.fs)
        self.probe = InterferenceProbe.from_servers(self.fs.servers)

    # -- convenience --------------------------------------------------------------
    @property
    def servers(self):
        return self.fs.servers

    def own_class_utilization(self) -> dict[str, float]:
        """Time-averaged CPU / NIC utilization of the own class so far."""
        return self._class_utilization(self.own)

    def victim_class_utilization(self) -> dict[str, float]:
        return self._class_utilization(self.victims)

    def _class_utilization(self, nodes) -> dict[str, float]:
        t = self.env.now
        if t <= 0 or not nodes:
            return {"cpu": 0.0, "tx": 0.0, "rx": 0.0}
        net = self.cluster.fabric.net
        return {
            "cpu": sum(n.cpu.busy_time() for n in nodes) / len(nodes) / t,
            "tx": sum(net.busy_time(n.tx) for n in nodes) / len(nodes) / t,
            "rx": sum(net.busy_time(n.rx) for n in nodes) / len(nodes) / t,
        }
