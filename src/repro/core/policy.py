"""The unified placement policy: every placement knob in one object.

Before this module the knobs steering placement were scattered — ``alpha``
/ ``capacity_guard`` / ``replication`` / ``erasure`` on
:class:`~repro.core.deployment.DeploymentConfig`, raw class-weight dicts
from :func:`repro.hashing.own_victim_weights`, and per-call kwargs on the
fs builders.  A :class:`PlacementPolicy` consolidates them: named node
classes with *target data fractions* (or explicit HRW weights), the hash
family, the capacity guard, and the redundancy policy.  It is frozen,
hashable and picklable, so it rides inside
:class:`~repro.core.deployment.DeploymentConfig` across the process-pool
spawn boundary and into scenario fingerprints unchanged.

The policy is *declarative*: it names classes and targets but no concrete
nodes.  :meth:`PlacementPolicy.materialize` binds it to a membership map
and returns the runtime :class:`~repro.fs.placement.PlacementMap` (the
object previously called ``PlacementPolicy``; the old name survives one
release as a deprecated alias in :mod:`repro.fs`).

Fractions become weights through the same math as before — the two-class
closed form, or the memoized :func:`repro.hashing.calibrate_weights`
numeric fit for three classes and up — so a policy-built deployment is
byte-identical to the legacy-knob path it replaces.  The market
controller (:mod:`repro.market`) retunes placement by *retargeting* a
policy each epoch and diffing the resulting stripe plans.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Mapping, Sequence

from ..fs.placement import ClassSpec, PlacementMap
from ..hashing import calibrate_weights
from ..hashing.hrw import MIX64, get_family

__all__ = ["ClassTarget", "PlacementPolicy"]

#: Tolerance for "fractions sum to one" validation.
_SUM_TOL = 1e-9


@dataclass(frozen=True)
class ClassTarget:
    """One class's share of the data: a target *fraction* (converted to an
    HRW weight by calibration) or an explicit *weight* (used verbatim).
    Exactly one of the two must be set."""

    fraction: float | None = None
    weight: float | None = None

    def __post_init__(self):
        if (self.fraction is None) == (self.weight is None):
            raise ValueError("set exactly one of fraction / weight")
        if self.fraction is not None and not 0.0 <= self.fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], "
                             f"got {self.fraction}")
        if self.weight is not None and self.weight < 0.0:
            raise ValueError("weight must be >= 0")


@dataclass(frozen=True)
class PlacementPolicy:
    """Frozen, picklable description of a placement regime.

    ``classes`` is an *ordered* tuple of ``(name, ClassTarget)`` pairs —
    order matters because the two-class closed form and the calibration
    fit are keyed on it, and because deployments materialize classes in
    declaration order.  Build one with :meth:`make` (dict-friendly) or
    :meth:`own_victim` (the paper's two-class split).
    """

    classes: tuple[tuple[str, ClassTarget], ...]
    family: str = MIX64.name
    capacity_guard: bool = True
    replication: int = 1
    erasure: tuple[int, int] | None = None
    calibration_seed: int = 12345

    def __post_init__(self):
        if not self.classes:
            raise ValueError("need at least one class")
        names = [name for name, _ in self.classes]
        if len(set(names)) != len(names):
            raise ValueError("duplicate class names")
        for name, target in self.classes:
            if not isinstance(target, ClassTarget):
                raise TypeError(f"class {name!r}: expected ClassTarget, "
                                f"got {type(target).__name__}")
        fracs = [t.fraction for _, t in self.classes]
        if any(f is not None for f in fracs):
            if any(f is None for f in fracs):
                raise ValueError("mix of fraction- and weight-targeted "
                                 "classes; pick one scheme")
            if abs(sum(fracs) - 1.0) > _SUM_TOL:
                raise ValueError("target fractions must sum to 1")
        if self.replication < 1:
            raise ValueError("replication must be >= 1")
        if self.erasure is not None:
            k, m = self.erasure
            if k < 1 or m < 1:
                raise ValueError("erasure (k, m) must both be >= 1")
        get_family(self.family)  # validate early

    # -- construction -------------------------------------------------------------
    @classmethod
    def make(cls, classes: Mapping[str, float | ClassTarget], *,
             family: str = MIX64.name, capacity_guard: bool = True,
             replication: int = 1,
             erasure: tuple[int, int] | None = None) -> "PlacementPolicy":
        """Build a policy from ``{name: fraction}`` (floats are target
        fractions) or ``{name: ClassTarget(...)}`` for explicit weights."""
        pairs = tuple(
            (name, t if isinstance(t, ClassTarget)
             else ClassTarget(fraction=float(t)))
            for name, t in classes.items())
        return cls(classes=pairs, family=family,
                   capacity_guard=capacity_guard, replication=replication,
                   erasure=erasure)

    @classmethod
    def own_victim(cls, alpha: float, **kwargs) -> "PlacementPolicy":
        """The paper's split: fraction *alpha* on own nodes, the rest on
        scavenged victims."""
        if not 0.0 <= alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        return cls.make({"own": alpha, "victim": 1.0 - alpha}, **kwargs)

    # -- introspection ------------------------------------------------------------
    @property
    def class_names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.classes)

    @property
    def by_fraction(self) -> bool:
        """True when classes are targeted by data fraction (calibrated)."""
        return self.classes[0][1].fraction is not None

    def fractions(self) -> dict[str, float]:
        """Target data fraction per class (fraction-targeted policies)."""
        if not self.by_fraction:
            raise ValueError("policy uses explicit weights, not fractions")
        return {name: t.fraction for name, t in self.classes}

    def target(self, name: str) -> ClassTarget:
        for cname, t in self.classes:
            if cname == name:
                return t
        raise KeyError(name)

    @property
    def alpha(self) -> float | None:
        """The ``own`` fraction, when this is an own/victim-style policy."""
        for cname, t in self.classes:
            if cname == "own" and t.fraction is not None:
                return t.fraction
        return None

    # -- weights ------------------------------------------------------------------
    def weights(self) -> dict[str, float]:
        """HRW class weights realizing the targets.

        Explicit-weight policies return their weights verbatim.
        Fraction-targeted policies go through
        :func:`repro.hashing.calibrate_weights`: the closed form for two
        classes (bit-identical to the legacy
        ``own_victim_weights(alpha)`` path) and the memoized numeric fit
        for three and up.
        """
        if not self.by_fraction:
            return {name: t.weight for name, t in self.classes}
        if len(self.classes) == 1:
            return {self.classes[0][0]: 0.0}
        return calibrate_weights(self.fractions(), family=self.family,
                                 seed=self.calibration_seed)

    # -- materialization ----------------------------------------------------------
    def materialize(self, members: Mapping[str, Sequence[str]],
                    ) -> PlacementMap:
        """Bind the policy to concrete nodes: the runtime
        :class:`~repro.fs.placement.PlacementMap` over the classes present
        in *members* (classes without members yet — e.g. victims before
        any lease lands — are simply omitted, matching how deployments
        grow the victim class through the scavenger).  Not interned here:
        consumers like :class:`~repro.fs.memfss.MemFSS` intern on intake,
        exactly as they did for hand-built maps."""
        weights = self.weights()
        classes = {name: ClassSpec(weights[name],
                                   tuple(members[name]))
                   for name, _ in self.classes if name in members}
        return PlacementMap(classes, self.family)

    # -- evolution ----------------------------------------------------------------
    def retargeted(self, fractions: Mapping[str, float],
                   ) -> "PlacementPolicy":
        """A new policy with the given target fractions (every class must
        be covered; the vector must sum to 1)."""
        missing = set(self.class_names) - set(fractions)
        extra = set(fractions) - set(self.class_names)
        if missing or extra:
            raise ValueError(f"fraction vector mismatch: missing={missing}, "
                             f"unknown={extra}")
        pairs = tuple((name, ClassTarget(fraction=float(fractions[name])))
                      for name, _ in self.classes)
        return replace(self, classes=pairs)

    def with_fraction(self, name: str, fraction: float) -> "PlacementPolicy":
        """Set one class's fraction, rescaling the others proportionally
        so the vector still sums to 1 (two-class: the classic α flip)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        current = self.fractions()
        if name not in current:
            raise KeyError(name)
        rest = {c: f for c, f in current.items() if c != name}
        rest_sum = sum(rest.values())
        remaining = 1.0 - fraction
        out = {name: fraction}
        if not rest:
            if not math.isclose(fraction, 1.0):
                raise ValueError("single-class policy must keep fraction 1")
        elif rest_sum <= _SUM_TOL:
            # Degenerate: split the remainder evenly.
            for c in rest:
                out[c] = remaining / len(rest)
        else:
            for c, f in rest.items():
                out[c] = f * remaining / rest_sum
        return self.retargeted(out)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{name}={t.fraction:.3g}" if t.fraction is not None
            else f"{name}:w={t.weight:.3g}"
            for name, t in self.classes)
        return f"<PlacementPolicy {parts} family={self.family}>"
