"""Experiment runners for the paper's figures.

- :func:`baseline_run` — one Fig. 2 scenario: the dd bag on a deployment
  with a given α, with 1 Hz class-level monitoring of CPU and NIC load.
- :func:`baseline_sweep` — all five α scenarios (Fig. 2a-f).
- Slowdown experiments live in :mod:`repro.core.slowdown`; consumption in
  :mod:`repro.core.consumption`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..sim import Monitor
from ..units import GB, MB
from ..workflows import dd_bag
from .deployment import DeploymentConfig, MemFSSDeployment

__all__ = ["BaselineMetrics", "baseline_run", "baseline_sweep",
           "FIG2_ALPHAS"]

#: The five data splits of Fig. 2: % of data on own nodes.
FIG2_ALPHAS = (0.0, 0.25, 0.5, 0.75, 1.0)


@dataclass
class BaselineMetrics:
    """Class-averaged load during one Fig. 2 scenario."""

    alpha: float
    runtime_s: float
    own_cpu: float          # mean CPU utilization, own class
    own_tx: float           # mean egress NIC utilization
    own_rx: float
    victim_cpu: float
    victim_tx: float
    victim_rx: float
    victim_rx_bytes_s: float   # mean ingest per victim node (bytes/s)
    peak_victim_rx: float = 0.0
    series: dict = field(default_factory=dict)


def baseline_run(alpha: float, n_tasks: int = 2048,
                 file_size: float = 128 * MB,
                 config: DeploymentConfig | None = None,
                 monitor_interval: float = 1.0,
                 keep_series: bool = False) -> BaselineMetrics:
    """One Fig. 2 scenario: run the dd bag at the given α and measure."""
    cfg = replace(config or DeploymentConfig(), alpha=alpha)
    dep = MemFSSDeployment(cfg)
    env = dep.env
    mon = Monitor(env, interval=monitor_interval)
    net = dep.cluster.fabric.net

    def class_probe(nodes, fn):
        return lambda: sum(fn(n) for n in nodes) / max(1, len(nodes))

    mon.add_probe("own.cpu", class_probe(dep.own,
                                         lambda n: n.cpu_utilization))
    mon.add_probe("own.tx", class_probe(dep.own,
                                        lambda n: n.nic_tx_utilization))
    mon.add_probe("own.rx", class_probe(dep.own,
                                        lambda n: n.nic_rx_utilization))
    mon.add_probe("victim.cpu", class_probe(dep.victims,
                                            lambda n: n.cpu_utilization))
    mon.add_probe("victim.tx", class_probe(dep.victims,
                                           lambda n: n.nic_tx_utilization))
    mon.add_probe("victim.rx", class_probe(dep.victims,
                                           lambda n: n.nic_rx_utilization))
    mon.start()
    wf = dd_bag(n_tasks=n_tasks, file_size=file_size)
    result = dep.engine.execute(wf)
    mon.stop()
    runtime = result.makespan

    own_util = dep.own_class_utilization()
    vic_util = dep.victim_class_utilization()
    nic_bw = dep.victims[0].spec.nic_bandwidth if dep.victims else 0.0
    metrics = BaselineMetrics(
        alpha=alpha, runtime_s=runtime,
        own_cpu=own_util["cpu"],
        own_tx=own_util["tx"], own_rx=own_util["rx"],
        victim_cpu=vic_util["cpu"],
        victim_tx=vic_util["tx"], victim_rx=vic_util["rx"],
        victim_rx_bytes_s=vic_util["rx"] * nic_bw,
        peak_victim_rx=mon.series["victim.rx"].max(),
    )
    if keep_series:
        metrics.series = {name: ts.as_arrays()
                          for name, ts in mon.series.items()}
    return metrics


def baseline_sweep(n_tasks: int = 2048, file_size: float = 128 * MB,
                   config: DeploymentConfig | None = None,
                   alphas: tuple[float, ...] = FIG2_ALPHAS,
                   ) -> list[BaselineMetrics]:
    """All Fig. 2 scenarios, in α order."""
    return [baseline_run(a, n_tasks=n_tasks, file_size=file_size,
                         config=config)
            for a in alphas]
