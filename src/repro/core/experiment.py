"""Experiment runners for the paper's figures.

- :func:`baseline_run` — one Fig. 2 scenario: the dd bag on a deployment
  with a given α, with 1 Hz class-level monitoring of CPU and NIC load.
- :func:`baseline_sweep` — all five α scenarios (Fig. 2a-f).
- Slowdown experiments live in :mod:`repro.core.slowdown`; consumption in
  :mod:`repro.core.consumption`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..fs import pressure_stats
from ..sim import Monitor
from ..units import GB, MB
from ..workflows import dd_bag
from .deployment import DeploymentConfig, MemFSSDeployment

__all__ = ["BaselineMetrics", "baseline_run", "baseline_sweep",
           "FIG2_ALPHAS"]

#: The five data splits of Fig. 2: % of data on own nodes.
FIG2_ALPHAS = (0.0, 0.25, 0.5, 0.75, 1.0)


@dataclass
class BaselineMetrics:
    """Class-averaged load during one Fig. 2 scenario."""

    alpha: float
    runtime_s: float
    own_cpu: float          # mean CPU utilization, own class
    own_tx: float           # mean egress NIC utilization
    own_rx: float
    victim_cpu: float
    victim_tx: float
    victim_rx: float
    victim_rx_bytes_s: float   # mean ingest per victim node (bytes/s)
    peak_victim_rx: float = 0.0
    series: dict = field(default_factory=dict)


def baseline_run(alpha: float, n_tasks: int = 2048,
                 file_size: float = 128 * MB,
                 config: DeploymentConfig | None = None,
                 monitor_interval: float = 1.0,
                 keep_series: bool = False) -> BaselineMetrics:
    """One Fig. 2 scenario: run the dd bag at the given α and measure."""
    cfg = (config or DeploymentConfig()).with_alpha(alpha)
    dep = MemFSSDeployment(cfg)
    env = dep.env
    mon = Monitor(env, interval=monitor_interval)

    def class_probe(nodes):
        # One fused pass per class and tick: each node's CPU/TX/RX
        # counters are read together instead of once per metric.  The
        # per-metric sums accumulate in the same node order as the old
        # one-probe-per-metric lambdas, so the series are bit-identical.
        def probe():
            cpu = tx = rx = 0.0
            for n in nodes:
                cpu += n.cpu_utilization
                tx += n.nic_tx_utilization
                rx += n.nic_rx_utilization
            k = max(1, len(nodes))
            return cpu / k, tx / k, rx / k
        return probe

    mon.add_multi_probe(("own.cpu", "own.tx", "own.rx"),
                        class_probe(dep.own))
    mon.add_multi_probe(("victim.cpu", "victim.tx", "victim.rx"),
                        class_probe(dep.victims))
    # Lazy: repro.metrics pulls in repro.exec, which imports this module.
    from ..metrics.pressure import attach_fill_probes, attach_pressure_probes
    from ..metrics.registry import metrics_registry
    # Process-wide counters: start each scenario from zero so payloads
    # stay pure functions of the spec (serial == process backend).
    metrics_registry.reset()
    attach_pressure_probes(mon)
    attach_fill_probes(mon, dep.fs)
    mon.start()
    wf = dd_bag(n_tasks=n_tasks, file_size=file_size)
    result = dep.engine.execute(wf)
    mon.stop()
    runtime = result.makespan

    own_util = dep.own_class_utilization()
    vic_util = dep.victim_class_utilization()
    nic_bw = dep.victims[0].spec.nic_bandwidth if dep.victims else 0.0
    metrics = BaselineMetrics(
        alpha=alpha, runtime_s=runtime,
        own_cpu=own_util["cpu"],
        own_tx=own_util["tx"], own_rx=own_util["rx"],
        victim_cpu=vic_util["cpu"],
        victim_tx=vic_util["tx"], victim_rx=vic_util["rx"],
        victim_rx_bytes_s=vic_util["rx"] * nic_bw,
        peak_victim_rx=mon.series["victim.rx"].max(),
    )
    if keep_series:
        metrics.series = {name: ts.as_arrays()
                          for name, ts in mon.series.items()}
    return metrics


def baseline_sweep(n_tasks: int = 2048, file_size: float = 128 * MB,
                   config: DeploymentConfig | None = None,
                   alphas: tuple[float, ...] = FIG2_ALPHAS,
                   monitor_interval: float = 1.0,
                   keep_series: bool = False,
                   jobs: int = 1, cache=None) -> list[BaselineMetrics]:
    """All Fig. 2 scenarios, in α order.

    The scenarios are independent, so the sweep fans out through
    :class:`repro.exec.SweepRunner`: ``jobs > 1`` runs them on that many
    worker processes, and *cache* (a :class:`repro.exec.ResultCache`, or
    ``True`` for the default ``.repro-cache/``) answers unchanged
    scenarios from disk.  Payloads round-trip through JSON either way,
    so ``series`` (with *keep_series*) holds plain lists here — use
    :func:`baseline_run` directly for the in-memory array view.
    """
    from ..exec import SweepRunner, fig2_sweep_specs, metrics_from_payload
    specs = fig2_sweep_specs(n_tasks=n_tasks, file_size=file_size,
                             config=config, alphas=alphas,
                             monitor_interval=monitor_interval,
                             keep_series=keep_series)
    runner = SweepRunner(backend="process" if jobs > 1 else "serial",
                         jobs=jobs, cache=cache)
    return [metrics_from_payload(r.payload) for r in runner.run(specs)]
