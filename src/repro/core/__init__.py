"""The paper's experiments, wired: deployments, slowdowns, consumption."""

from .admission import AdmissionReport, predict_admission, predicted_files
from .degraded import (DEGRADABLE_ERRORS, DegradedReason, DegradedResult,
                       classify_failure)
from .deployment import DeploymentConfig, MemFSSDeployment
from .policy import ClassTarget, PlacementPolicy
from .experiment import (FIG2_ALPHAS, BaselineMetrics, baseline_run,
                         baseline_sweep)
from .slowdown import (BackgroundWorkload, SlowdownResult, average_slowdown,
                       measure_slowdowns)
from .consumption import (ConsumptionPoint, footprint_of, normalized,
                          run_scavenging, run_standalone)

__all__ = [
    "AdmissionReport", "predict_admission", "predicted_files",
    "DegradedReason", "DegradedResult", "DEGRADABLE_ERRORS",
    "classify_failure",
    "DeploymentConfig", "MemFSSDeployment",
    "ClassTarget", "PlacementPolicy",
    "BaselineMetrics", "baseline_run", "baseline_sweep", "FIG2_ALPHAS",
    "SlowdownResult", "measure_slowdowns", "average_slowdown",
    "BackgroundWorkload",
    "ConsumptionPoint", "run_standalone", "run_scavenging", "footprint_of",
    "normalized",
]
