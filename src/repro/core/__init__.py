"""The paper's experiments, wired: deployments, slowdowns, consumption."""

from .deployment import DeploymentConfig, MemFSSDeployment
from .experiment import (FIG2_ALPHAS, BaselineMetrics, baseline_run,
                         baseline_sweep)
from .slowdown import (BackgroundWorkload, SlowdownResult, average_slowdown,
                       measure_slowdowns)
from .consumption import (ConsumptionPoint, footprint_of, normalized,
                          run_scavenging, run_standalone)

__all__ = [
    "DeploymentConfig", "MemFSSDeployment",
    "BaselineMetrics", "baseline_run", "baseline_sweep", "FIG2_ALPHAS",
    "SlowdownResult", "measure_slowdowns", "average_slowdown",
    "BackgroundWorkload",
    "ConsumptionPoint", "run_standalone", "run_scavenging", "footprint_of",
    "normalized",
]
