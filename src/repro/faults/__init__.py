"""Fault injection and recovery accounting (the robustness layer).

The paper's premise is that scavenged memory is *transient* (§III-A):
victim leases vanish under tenant pressure and MemFSS must survive via
evacuation and lazy movement (§V-C).  This package provides

- :mod:`repro.faults.stats` — process-wide counters (injected/recovered
  faults, MTTR, degraded reads, retry/hedge activity) shared by the store
  client, the scavenger and the repair daemon;
- :mod:`repro.faults.injector` — a deterministic, seeded
  :class:`FaultInjector` driven by a declarative :class:`FaultSchedule`:
  store-server crashes, fabric link degradation and partitions,
  lease-revocation storms, and memory-pressure waves.
"""

from .stats import FaultStats, fault_stats
from .injector import (FaultEvent, FaultSchedule, FaultInjector,
                       revocation_storm)

__all__ = [
    "FaultStats", "fault_stats",
    "FaultEvent", "FaultSchedule", "FaultInjector", "revocation_storm",
]
