"""Process-wide fault/recovery counters.

One shared :data:`fault_stats` instance (the same pattern as
``repro.fs.placement.planner_stats``) collects everything the robustness
layer does: the injector records faults, the store client records
retries/hedges/timeouts/degraded reads, and the scavenger's evacuation
path plus the repair daemon record recoveries.  MTTR is derived from
matched fault→recovery pairs keyed by node.

The module is dependency-free on purpose: it is imported from
``store.client`` and ``fs.scavenger`` without creating package cycles.
"""

from __future__ import annotations

__all__ = ["FaultStats", "fault_stats"]


class FaultStats:
    """Cumulative robustness counters (reset per experiment run)."""

    _COUNTERS = (
        # injector side
        "faults_injected", "crashes", "link_degradations", "partitions",
        "revocations", "pressure_waves",
        # client resilience side
        "retries", "hedged_reads", "timeouts", "degraded_reads",
        "unavailable_errors",
        # recovery side
        "recoveries", "evacuations", "repair_scans", "stripes_repaired",
    )
    __slots__ = _COUNTERS + ("repaired_bytes", "repair_times", "_open")

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        for name in self._COUNTERS:
            setattr(self, name, 0)
        self.repaired_bytes = 0.0
        #: Completed fault→recovery durations (seconds of virtual time).
        self.repair_times: list[float] = []
        #: Open faults: key (usually a node name) → injection time.
        self._open: dict[str, float] = {}

    # -- fault / recovery pairing ------------------------------------------------
    def record_fault(self, key: str, now: float) -> None:
        """A fault hit *key* (node) at virtual time *now*."""
        self.faults_injected += 1
        # The earliest open fault per key defines the outage start.
        self._open.setdefault(key, now)

    def record_recovery(self, key: str, now: float) -> None:
        """Redundancy/ownership of *key* is whole again."""
        start = self._open.pop(key, None)
        if start is None:
            return
        self.recoveries += 1
        self.repair_times.append(now - start)

    def resolve_open(self, now: float) -> int:
        """Close every open fault (a clean repair sweep found no deficit)."""
        n = 0
        for key in list(self._open):
            self.record_recovery(key, now)
            n += 1
        return n

    @property
    def open_faults(self) -> tuple[str, ...]:
        return tuple(self._open)

    def mttr(self) -> float:
        """Mean time to recovery over all completed fault→repair pairs."""
        if not self.repair_times:
            return 0.0
        return sum(self.repair_times) / len(self.repair_times)

    def snapshot(self) -> dict[str, float]:
        out: dict[str, float] = {name: float(getattr(self, name))
                                 for name in self._COUNTERS}
        out["repaired_bytes"] = float(self.repaired_bytes)
        out["open_faults"] = float(len(self._open))
        out["mttr_s"] = self.mttr()
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        hot = {k: v for k, v in self.snapshot().items() if v}
        return f"<FaultStats {hot}>"


fault_stats = FaultStats()
