"""Deterministic, schedule-driven fault injection.

The injector turns a declarative :class:`FaultSchedule` into simulation
events: store-server crashes, fabric link degradation and partitions,
lease-revocation storms fired against
:meth:`~repro.cluster.reservation.ReservationSystem.revoke_leases`, and
tenant memory-pressure waves.  Target selection is seeded through a
``sim.rng`` stream, so two runs with the same seed inject byte-identical
fault sequences — the property the recovery benchmarks assert.

The injector holds only duck-typed references (a servers mapping, the
scavenging manager, the reservation system, the fabric), so this module
imports nothing from the store/fs layers and stays cycle-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

from ..sim import Environment
from ..sim.rng import RngRegistry
from .stats import fault_stats

__all__ = ["FaultEvent", "FaultSchedule", "FaultInjector",
           "revocation_storm"]

#: Supported fault kinds.
KINDS = ("crash", "degrade", "partition", "revoke", "revoke_storm",
         "pressure_wave")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``target`` pins a node by name; ``fraction`` (storms/waves) instead
    selects that share of the current candidates through the seeded
    stream.  ``duration`` > 0 auto-heals degradations/partitions and
    releases pressure waves after that many simulated seconds.
    ``factor`` is the link-capacity multiplier for ``degrade`` and the
    fraction of node memory claimed by a ``pressure_wave``.
    """

    at: float
    kind: str
    target: str | None = None
    fraction: float = 0.0
    duration: float = 0.0
    factor: float = 0.5
    cause: str = "fault"

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} "
                             f"(expected one of {KINDS})")
        if self.at < 0:
            raise ValueError("fault time must be non-negative")
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        if self.duration < 0:
            raise ValueError("duration must be non-negative")
        if self.factor < 0:
            raise ValueError("factor must be non-negative")


@dataclass(frozen=True)
class FaultSchedule:
    """A declarative, time-ordered list of :class:`FaultEvent`\\ s."""

    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "events",
                           tuple(sorted(self.events, key=lambda e: e.at)))

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def extended(self, *events: FaultEvent) -> "FaultSchedule":
        return FaultSchedule(self.events + tuple(events))


def revocation_storm(at: float, fraction: float,
                     cause: str = "pressure-storm") -> FaultSchedule:
    """A schedule with one storm revoking *fraction* of leased victims."""
    return FaultSchedule((FaultEvent(at=at, kind="revoke_storm",
                                     fraction=fraction, cause=cause),))


class FaultInjector:
    """Fires a :class:`FaultSchedule` into a running deployment.

    Wiring is by capability: pass whichever handles the schedule needs —
    *servers* (mapping or callable returning ``{node_name: StoreServer}``)
    for crashes, *manager* (the :class:`~repro.fs.scavenger
    .ScavengingManager`) so crashes also leave the placement, *fabric*
    for degradation/partitions, *reservations* for lease revocation, and
    *nodes* for pressure waves.
    """

    def __init__(self, env: Environment, schedule: FaultSchedule, *,
                 servers: Mapping[str, Any] | Callable[[], Mapping[str, Any]]
                 | None = None,
                 manager: Any = None,
                 fabric: Any = None,
                 reservations: Any = None,
                 nodes: Iterable[Any] = (),
                 rng: RngRegistry | None = None,
                 stream: str = "faults"):
        self.env = env
        self.schedule = schedule
        self._servers = servers
        self.manager = manager
        self.fabric = fabric
        self.reservations = reservations
        self.nodes = {n.name: n for n in nodes}
        self.rng = (rng or RngRegistry(0)).stream(stream)
        #: Chronological record of what was injected (for reproducibility
        #: assertions): ``(time, kind, (target, ...))`` tuples.
        self.log: list[tuple[float, str, tuple[str, ...]]] = []
        self._proc = None
        self._pressure_tokens = 0

    # -- wiring helpers -----------------------------------------------------------
    def servers(self) -> Mapping[str, Any]:
        if callable(self._servers):
            return self._servers()
        return self._servers or {}

    def _leased_nodes(self) -> list[Any]:
        """Victim nodes that currently hold an active scavenge lease."""
        if self.manager is not None:
            return [lease.node for lease in self.manager.leases.values()
                    if lease.active]
        if self.reservations is not None:
            return [lease.node
                    for lease in self.reservations.active_leases()]
        return []

    def _pick(self, candidates: list, count: int) -> list:
        """Deterministically sample *count* distinct candidates."""
        candidates = sorted(candidates, key=lambda n: getattr(n, "name", n))
        if count >= len(candidates):
            return candidates
        idx = self.rng.choice(len(candidates), size=count, replace=False)
        return [candidates[int(i)] for i in sorted(idx)]

    # -- lifecycle ----------------------------------------------------------------
    def start(self) -> None:
        if self._proc is not None:
            raise RuntimeError("injector already started")
        self._proc = self.env.process(self._run(), name="fault-injector")

    def _run(self):
        for ev in self.schedule:
            delay = ev.at - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            self._fire(ev)

    # -- dispatch -----------------------------------------------------------------
    def _fire(self, ev: FaultEvent) -> None:
        targets = getattr(self, f"_do_{ev.kind}")(ev)
        self.log.append((self.env.now, ev.kind, tuple(targets)))

    def _do_crash(self, ev: FaultEvent) -> list[str]:
        servers = self.servers()
        if ev.target is not None:
            names = [ev.target] if ev.target in servers else []
        else:
            count = max(1, round(ev.fraction * len(servers))) \
                if ev.fraction else 1
            names = self._pick(list(servers), count)
        now = self.env.now
        for name in names:
            servers[name].crash()
            fault_stats.crashes += 1
            fault_stats.record_fault(name, now)
            if self.manager is not None:
                self.manager.handle_crash(name)
        return names

    def _do_degrade(self, ev: FaultEvent) -> list[str]:
        if self.fabric is None:
            return []
        names = [ev.target] if ev.target is not None else \
            [n.name for n in self._pick(list(self.nodes.values()) or
                                        self._leased_nodes(), 1)]
        for name in names:
            restore = self.fabric.degrade_node(name, ev.factor)
            fault_stats.link_degradations += 1
            if ev.duration > 0:
                self.env.schedule_callback(ev.duration, restore)
        return names

    def _do_partition(self, ev: FaultEvent) -> list[str]:
        if self.fabric is None:
            return []
        names = [ev.target] if ev.target is not None else \
            [n.name for n in self._pick(list(self.nodes.values()) or
                                        self._leased_nodes(), 1)]
        for name in names:
            heal = self.fabric.partition_node(name)
            fault_stats.partitions += 1
            if ev.duration > 0:
                self.env.schedule_callback(ev.duration, heal)
        return names

    def _do_revoke(self, ev: FaultEvent) -> list[str]:
        nodes = self._leased_nodes()
        if ev.target is not None:
            nodes = [n for n in nodes if n.name == ev.target]
        else:
            nodes = self._pick(nodes, 1)
        return self._revoke(nodes, ev.cause)

    def _do_revoke_storm(self, ev: FaultEvent) -> list[str]:
        nodes = self._leased_nodes()
        count = max(1, round(ev.fraction * len(nodes))) if nodes else 0
        return self._revoke(self._pick(nodes, count), ev.cause)

    def _revoke(self, nodes: list, cause: str) -> list[str]:
        now = self.env.now
        names = []
        for node in nodes:
            hit = self.reservations.revoke_leases(node, cause=cause) \
                if self.reservations is not None else 0
            if hit == 0 and self.manager is not None:
                # No reservation-system lease (tests wire the manager
                # directly): revoke the manager's own record.
                lease = self.manager.leases.get(node.name)
                if lease is not None and lease.active:
                    lease.revoke(cause)
                    hit = 1
            if hit:
                fault_stats.revocations += hit
                fault_stats.record_fault(node.name, now)
                names.append(node.name)
        return names

    def _do_pressure_wave(self, ev: FaultEvent) -> list[str]:
        nodes = list(self.nodes.values()) or self._leased_nodes()
        if ev.target is not None:
            nodes = [n for n in nodes if n.name == ev.target]
        else:
            count = max(1, round(ev.fraction * len(nodes))) if nodes else 0
            nodes = self._pick(nodes, count)
        self._pressure_tokens += 1
        owner = f"tenant-pressure:{self._pressure_tokens}"
        names = []
        for node in nodes:
            grab = min(ev.factor * node.memory_total, node.memory_free)
            if grab <= 0:
                continue
            node.allocate_memory(owner, grab)
            names.append(node.name)
            if ev.duration > 0:
                self.env.schedule_callback(
                    ev.duration,
                    lambda n=node, g=grab: n.free_memory(owner, g))
        if names:
            fault_stats.pressure_waves += 1
        return names
