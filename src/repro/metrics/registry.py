"""The single entry point over every process-wide counter object.

The repo accumulated one ``*_stats`` singleton per subsystem — pressure,
faults, placement planner, flow solver, weight-fit memo, the lease
market, the sweep executor — and every scenario executor had to know
which ones to reset to keep payloads pure functions of their spec (the
determinism contract: a scenario must see identical counters whether it
runs first in a process or fiftieth).  The :class:`MetricsRegistry`
replaces that folklore with two named groups:

* ``scenario`` — counters scoped to one simulated scenario.  Executors
  call ``metrics_registry.reset()`` once at the top instead of picking
  singletons by hand; adding a new subsystem means registering its stats
  object here, not editing every executor.
* ``executor`` — counters scoped to the *process* (sweep cache
  hits/misses, worker crashes).  Deliberately **not** touched by a
  scenario reset: a warm-cache assertion must survive the scenarios it
  measures.

Every registered object obeys the tiny stats protocol the singletons
already share: ``reset()`` and ``snapshot() -> dict``.
"""

from __future__ import annotations

from typing import Protocol

__all__ = ["MetricsRegistry", "metrics_registry"]


class StatsLike(Protocol):
    """The counter-object protocol every ``*_stats`` singleton obeys."""

    def reset(self) -> None: ...          # pragma: no cover - protocol
    def snapshot(self) -> dict: ...       # pragma: no cover - protocol


class MetricsRegistry:
    """Named groups of counter singletons with uniform reset/snapshot."""

    def __init__(self):
        self._groups: dict[str, dict[str, StatsLike]] = {}

    def register(self, name: str, stats: StatsLike, *,
                 group: str = "scenario") -> None:
        """Add *stats* under *name*; re-registering a name replaces it
        (same-object re-registration is an idempotent no-op)."""
        for members in self._groups.values():
            members.pop(name, None)
        self._groups.setdefault(group, {})[name] = stats

    def names(self, group: str | None = None) -> list[str]:
        if group is not None:
            return sorted(self._groups.get(group, {}))
        return sorted(n for members in self._groups.values()
                      for n in members)

    def reset(self, group: str = "scenario") -> None:
        """Zero every counter in *group* (scenario executors call this
        once at the top of each run)."""
        for stats in self._groups.get(group, {}).values():
            stats.reset()

    def reset_all(self) -> None:
        for members in self._groups.values():
            for stats in members.values():
                stats.reset()

    def snapshot(self, group: str | None = None) -> dict[str, dict]:
        """``{name: counters}`` over *group* (or everything)."""
        out: dict[str, dict] = {}
        for gname, members in sorted(self._groups.items()):
            if group is not None and gname != group:
                continue
            for name, stats in sorted(members.items()):
                out[name] = stats.snapshot()
        return out


class _WeightFitProbe:
    """Scenario-reset adapter for the weight-fit memo.

    Zeroing ``fit_hits``/``fit_misses`` while the fit cache survives
    would make the counters process-warmth-dependent — a warm process
    reports hits where a cold one reports misses for the same scenario,
    breaking the determinism contract above.  So the scenario reset
    drops the cache along with the counters; the memo still pays for
    itself *within* a scenario, which is the market controller's
    per-epoch retune hot path it exists for.
    """

    def reset(self) -> None:
        from ..hashing.weights import clear_weight_fit_cache
        clear_weight_fit_cache()

    def snapshot(self) -> dict:
        from ..hashing.weights import weight_fit_stats
        return weight_fit_stats.snapshot()


def _default_registry() -> MetricsRegistry:
    # Local imports: this module is imported by repro.metrics, which
    # sits above every subsystem it aggregates.
    from ..exec.stats import exec_stats
    from ..faults.stats import fault_stats
    from ..fs.capacity import pressure_stats
    from ..fs.placement import planner_stats
    from ..market.stats import market_stats
    from ..sim.flownet import flownet_stats

    registry = MetricsRegistry()
    registry.register("pressure", pressure_stats)
    registry.register("faults", fault_stats)
    registry.register("planner", planner_stats)
    registry.register("solver", flownet_stats)
    registry.register("weight_fit", _WeightFitProbe())
    registry.register("market", market_stats)
    registry.register("exec", exec_stats, group="executor")
    return registry


#: Process-wide instance with every known subsystem pre-registered.
metrics_registry = _default_registry()
