"""Placement-planner observability.

The batch-first planner (:mod:`repro.fs.placement`) keeps process-wide
counters — policy-intern hits/misses, stripe-plan hits/misses, and total
stripes resolved through plans.  This module exposes them as plain
snapshots for reports and as :class:`~repro.sim.monitor.Monitor` probes so
experiment runs can chart placement-resolution work next to CPU/NIC
utilization.
"""

from __future__ import annotations

from ..fs.placement import planner_stats
from ..sim.monitor import Monitor, TimeSeries

__all__ = ["placement_counters", "attach_placement_probes"]

_FIELDS = ("policy_hits", "policy_misses", "plan_hits", "plan_misses",
           "stripes_resolved")


def placement_counters() -> dict[str, int]:
    """Current planner counters (cumulative since last reset)."""
    return planner_stats.snapshot()


def attach_placement_probes(monitor: Monitor,
                            prefix: str = "planner",
                            ) -> dict[str, TimeSeries]:
    """Sample every planner counter as a ``<prefix>.<field>`` time series.

    Counters are cumulative; diff consecutive samples for rates.
    """
    return monitor.add_probes({
        f"{prefix}.{field}": (lambda f=field:
                              float(getattr(planner_stats, f)))
        for field in _FIELDS})
