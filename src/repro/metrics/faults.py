"""Fault/recovery observability.

The robustness layer (:mod:`repro.faults`) keeps process-wide counters —
faults injected per kind, client retries/hedges/timeouts, degraded
reads, evacuations and repaired stripes, plus the MTTR derived from
matched fault→recovery pairs.  This module exposes them as plain
snapshots for reports and as :class:`~repro.sim.monitor.Monitor` probes
so experiment runs can chart recovery activity next to CPU/NIC
utilization.
"""

from __future__ import annotations

from ..faults.stats import fault_stats
from ..sim.monitor import Monitor, TimeSeries
from .report import render_table

__all__ = ["fault_counters", "attach_fault_probes", "render_fault_report"]

#: The counters worth charting over time (all cumulative).
_PROBE_FIELDS = ("faults_injected", "revocations", "crashes",
                 "retries", "hedged_reads", "timeouts", "degraded_reads",
                 "evacuations", "recoveries", "stripes_repaired",
                 "repaired_bytes")


def fault_counters() -> dict[str, float]:
    """Current robustness counters (cumulative since last reset),
    including ``open_faults`` and the running ``mttr_s``."""
    return fault_stats.snapshot()


def attach_fault_probes(monitor: Monitor, prefix: str = "faults",
                        ) -> dict[str, TimeSeries]:
    """Sample every fault counter as a ``<prefix>.<field>`` time series.

    Counters are cumulative; diff consecutive samples for rates.  The
    extra ``<prefix>.open_faults`` probe is a gauge (currently-unrepaired
    fault sites), and ``<prefix>.mttr_s`` tracks the running mean time to
    recovery.
    """
    probes = {
        f"{prefix}.{field}": (lambda f=field:
                              float(getattr(fault_stats, f)))
        for field in _PROBE_FIELDS}
    probes[f"{prefix}.open_faults"] = \
        lambda: float(len(fault_stats.open_faults))
    probes[f"{prefix}.mttr_s"] = lambda: fault_stats.mttr()
    return monitor.add_probes(probes)


def render_fault_report(title: str = "fault/recovery counters") -> str:
    """The non-zero fault counters as a fixed-width text table."""
    rows = [(name, f"{value:.6g}")
            for name, value in fault_counters().items() if value]
    if not rows:
        rows = [("(no faults recorded)", "")]
    return render_table(("counter", "value"), rows, title=title)
