"""Flow-solver observability.

The incremental flow network (:mod:`repro.sim.flownet`) keeps process-wide
counters — coalesced solves, full reference solves, progressive-filling
rounds, flows/links actually re-solved, mutations absorbed by batching,
and numerical stalemates.  This module exposes them as plain snapshots for
reports and as :class:`~repro.sim.monitor.Monitor` probes, mirroring the
placement-planner counters, so experiment runs can chart solver work next
to CPU/NIC utilization (and the perf suite can assert budgets on it).
"""

from __future__ import annotations

from ..sim.flownet import flownet_stats
from ..sim.monitor import Monitor, TimeSeries

__all__ = ["solver_counters", "attach_solver_probes"]

_FIELDS = ("solves", "full_solves", "rounds", "flows_touched",
           "links_touched", "batch_coalesced", "stalemates")


def solver_counters() -> dict[str, int]:
    """Current flow-solver counters (cumulative since last reset)."""
    return flownet_stats.snapshot()


def attach_solver_probes(monitor: Monitor,
                         prefix: str = "solver",
                         ) -> dict[str, TimeSeries]:
    """Sample every solver counter as a ``<prefix>.<field>`` time series.

    Counters are cumulative; diff consecutive samples for rates.
    """
    return monitor.add_probes({
        f"{prefix}.{field}": (lambda f=field:
                              float(getattr(flownet_stats, f)))
        for field in _FIELDS})
