"""Flow-solver observability.

The incremental flow network (:mod:`repro.sim.flownet`) keeps process-wide
counters — coalesced solves, full reference solves, progressive-filling
rounds, flows/links actually re-solved, mutations absorbed by batching,
and numerical stalemates.  This module exposes them as plain snapshots for
reports and as :class:`~repro.sim.monitor.Monitor` probes, mirroring the
placement-planner counters, so experiment runs can chart solver work next
to CPU/NIC utilization (and the perf suite can assert budgets on it).
"""

from __future__ import annotations

from ..sim.flownet import flownet_stats
from ..sim.monitor import Monitor, TimeSeries
from ..sim.select import selection_snapshot, selection_summary

__all__ = ["solver_counters", "attach_solver_probes",
           "selector_decisions", "selector_summary"]

_FIELDS = ("solves", "full_solves", "rounds", "flows_touched",
           "links_touched", "batch_coalesced", "auto_full",
           "auto_incremental", "stalemates")


def solver_counters() -> dict[str, int]:
    """Current flow-solver counters (cumulative since last reset)."""
    return flownet_stats.snapshot()


def selector_decisions() -> list[dict]:
    """The ``"auto"`` solver's decision trace (bounded, oldest first).

    Each entry records the flush time, the chosen strategy, the dirty /
    total link counts and active-flow count it saw, and the smoothed
    dirty fraction — enough to audit why a run went full vs incremental.
    Reset with :func:`repro.sim.reset_selection_log`.
    """
    return selection_snapshot()


def selector_summary() -> dict:
    """Aggregate selector view: decision counts + trace overflow."""
    return selection_summary()


def attach_solver_probes(monitor: Monitor,
                         prefix: str = "solver",
                         ) -> dict[str, TimeSeries]:
    """Sample every solver counter as a ``<prefix>.<field>`` time series.

    Counters are cumulative; diff consecutive samples for rates.
    """
    return monitor.add_probes({
        f"{prefix}.{field}": (lambda f=field:
                              float(getattr(flownet_stats, f)))
        for field in _FIELDS})
