"""Utilization summaries and text rendering for tables/figures."""

from .exec import attach_exec_probes, exec_counters
from .faults import (attach_fault_probes, fault_counters,
                     render_fault_report)
from .market import attach_market_probes, market_counters
from .placement import attach_placement_probes, placement_counters
from .pressure import (attach_fill_probes, attach_pressure_probes,
                       class_fill_ratios, pressure_counters,
                       render_pressure_report)
from .registry import MetricsRegistry, metrics_registry
from .report import fmt_pct, render_bars, render_table
from .solver import (attach_solver_probes, selector_decisions,
                     selector_summary, solver_counters)
from .utilization import NodeUtilization, class_utilization, node_utilization

__all__ = [
    "render_table", "render_bars", "fmt_pct",
    "NodeUtilization", "node_utilization", "class_utilization",
    "placement_counters", "attach_placement_probes",
    "solver_counters", "attach_solver_probes",
    "selector_decisions", "selector_summary",
    "fault_counters", "attach_fault_probes", "render_fault_report",
    "exec_counters", "attach_exec_probes",
    "pressure_counters", "attach_pressure_probes", "attach_fill_probes",
    "class_fill_ratios", "render_pressure_report",
    "market_counters", "attach_market_probes",
    "MetricsRegistry", "metrics_registry",
]
