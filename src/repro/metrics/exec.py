"""Sweep-executor observability.

The scenario executor (:mod:`repro.exec`) keeps process-wide counters —
scenarios actually simulated, cache hits/misses/invalidations/stores,
worker crashes, sweeps per backend.  This module exposes them as plain
snapshots and as :class:`~repro.sim.monitor.Monitor` probes, mirroring
the placement-planner and flow-solver counters, so figure runs and CI
lanes can assert on cache behavior (e.g. "a warm re-run executes zero
simulations").
"""

from __future__ import annotations

from ..exec.stats import exec_stats
from ..sim.monitor import Monitor, TimeSeries

__all__ = ["exec_counters", "attach_exec_probes"]

_FIELDS = exec_stats._COUNTERS


def exec_counters() -> dict[str, int]:
    """Current executor counters (cumulative since last reset)."""
    return exec_stats.snapshot()


def attach_exec_probes(monitor: Monitor,
                       prefix: str = "exec") -> dict[str, TimeSeries]:
    """Sample every executor counter as a ``<prefix>.<field>`` series.

    Counters are cumulative; diff consecutive samples for rates.
    """
    return monitor.add_probes({
        f"{prefix}.{field}": (lambda f=field:
                              float(getattr(exec_stats, f)))
        for field in _FIELDS})
