"""Marketplace observability.

The lease market (:mod:`repro.market`) keeps process-wide counters —
offers published, leases granted/noticed/revoked, controller epochs and
α retunes, and the bytes/stripes the plan-diff rebalances migrated.
This module exposes them as plain snapshots for reports and as
:class:`~repro.sim.monitor.Monitor` probes so experiment runs can chart
market activity next to CPU/NIC utilization.
"""

from __future__ import annotations

from ..market.stats import market_stats
from ..sim.monitor import Monitor, TimeSeries

__all__ = ["market_counters", "attach_market_probes"]

_FIELDS = market_stats._COUNTERS


def market_counters() -> dict[str, float]:
    """Current marketplace counters (cumulative since last reset)."""
    return market_stats.snapshot()


def attach_market_probes(monitor: Monitor,
                         prefix: str = "market") -> dict[str, TimeSeries]:
    """Sample every market counter as a ``<prefix>.<field>`` time series.

    Counters are cumulative; diff consecutive samples for rates.
    """
    return monitor.add_probes({
        f"{prefix}.{field}": (lambda f=field:
                              float(getattr(market_stats, f)))
        for field in _FIELDS})
