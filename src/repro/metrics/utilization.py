"""Utilization summaries over simulated runs.

These helpers turn the fluid resources' busy-time integrals into the
class-level utilization percentages the paper plots (Fig. 2) and the
cluster-level figures Table I surveys.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.node import Node

__all__ = ["NodeUtilization", "node_utilization", "class_utilization"]


@dataclass(frozen=True)
class NodeUtilization:
    """Time-averaged utilization of one node over [0, t]."""

    name: str
    cpu: float
    nic_tx: float
    nic_rx: float
    memory: float

    @property
    def network(self) -> float:
        return max(self.nic_tx, self.nic_rx)


def node_utilization(node: Node, net, duration: float) -> NodeUtilization:
    """Average utilization of *node* over *duration* seconds.

    *net* is the :class:`~repro.sim.FlowNetwork` owning the node's links.
    Memory utilization is the instantaneous allocation at call time (the
    accounting model has no history).
    """
    if duration <= 0:
        raise ValueError("duration must be positive")
    return NodeUtilization(
        name=node.name,
        cpu=node.cpu.busy_time() / duration,
        nic_tx=net.busy_time(node.tx) / duration if node.tx else 0.0,
        nic_rx=net.busy_time(node.rx) / duration if node.rx else 0.0,
        memory=node.memory_utilization,
    )


def class_utilization(nodes: list[Node], net,
                      duration: float) -> NodeUtilization:
    """Mean utilization across a node class (own / victim)."""
    if not nodes:
        raise ValueError("need at least one node")
    per = [node_utilization(n, net, duration) for n in nodes]
    k = len(per)
    return NodeUtilization(
        name=f"class[{k}]",
        cpu=sum(u.cpu for u in per) / k,
        nic_tx=sum(u.nic_tx for u in per) / k,
        nic_rx=sum(u.nic_rx for u in per) / k,
        memory=sum(u.memory for u in per) / k,
    )
