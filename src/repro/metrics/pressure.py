"""Capacity-pressure observability.

The capacity-aware write path (:mod:`repro.fs.capacity`) keeps
process-wide counters — writes checked against the ledger, proactive and
reactive spills down the HRW chain, cumulative spill distance, replica
shortfalls, evacuation spills/drops, capacity-blocked repairs, and
admission-control verdicts.  This module exposes them as snapshots for
reports and as :class:`~repro.sim.monitor.Monitor` probes, plus
per-class store fill-ratio gauges so pressure can be charted next to
CPU/NIC utilization.
"""

from __future__ import annotations

from ..fs.capacity import pressure_stats
from ..sim.monitor import Monitor, TimeSeries
from .report import render_table

__all__ = ["pressure_counters", "attach_pressure_probes",
           "attach_fill_probes", "class_fill_ratios",
           "render_pressure_report"]

#: Counters worth charting over time (all cumulative).
_PROBE_FIELDS = ("writes_checked", "spilled_writes", "spill_distance",
                 "reactive_spills", "replica_shortfall", "exhausted_writes",
                 "evac_spills", "evac_drops", "repair_skips",
                 "admission_checks", "admission_rejections",
                 "degraded_rows")


def pressure_counters() -> dict[str, float]:
    """Current capacity-pressure counters (cumulative since reset)."""
    return pressure_stats.snapshot()


def attach_pressure_probes(monitor: Monitor, prefix: str = "pressure",
                           ) -> dict[str, TimeSeries]:
    """Sample every pressure counter as a ``<prefix>.<field>`` series.

    Counters are cumulative; diff consecutive samples for rates.  The
    derived ``<prefix>.mean_spill_distance`` gauge tracks how far below
    its ideal rank the average spilled stripe landed.
    """
    probes = {
        f"{prefix}.{field}": (lambda f=field:
                              float(getattr(pressure_stats, f)))
        for field in _PROBE_FIELDS}

    def _mean_distance() -> float:
        spills = pressure_stats.spilled_writes + pressure_stats.evac_spills
        if spills == 0:
            return 0.0
        return pressure_stats.spill_distance / spills

    probes[f"{prefix}.mean_spill_distance"] = _mean_distance
    return monitor.add_probes(probes)


def class_fill_ratios(fs) -> dict[str, float]:
    """Mean store fill (used/capacity) per placement class of *fs*.

    Stores missing from the live server map (crashed, evicted) are
    skipped; an empty class reads 0.
    """
    ratios: dict[str, float] = {}
    for cls, spec in fs.policy.classes.items():
        used = cap = 0.0
        for name in spec.nodes:
            server = fs.servers.get(name)
            if server is None:
                continue
            used += server.kv.used_bytes
            cap += server.kv.capacity
        ratios[cls] = used / cap if cap > 0 else 0.0
    return ratios


def attach_fill_probes(monitor: Monitor, fs, prefix: str = "fill",
                       ) -> dict[str, TimeSeries]:
    """Per-class fill-ratio gauges: ``<prefix>.<class>`` in [0, 1].

    Classes are read from the *current* policy at each sample, so probes
    follow membership changes (evictions, crashes) automatically — but
    the set of charted classes is fixed at attach time.
    """
    probes = {
        f"{prefix}.{cls}": (lambda c=cls:
                            float(class_fill_ratios(fs).get(c, 0.0)))
        for cls in fs.policy.classes}
    return monitor.add_probes(probes)


def render_pressure_report(title: str = "capacity-pressure counters",
                           ) -> str:
    """The non-zero pressure counters as a fixed-width text table."""
    rows = [(name, f"{value:.6g}")
            for name, value in pressure_counters().items() if value]
    if not rows:
        rows = [("(no pressure recorded)", "")]
    return render_table(("counter", "value"), rows, title=title)
