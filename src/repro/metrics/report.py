"""Plain-text table/figure rendering for the benchmark harness.

Every bench regenerates its table or figure as text: the same rows or
series the paper reports, printed with fixed-width columns so runs are
easy to diff against EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "render_bars", "fmt_pct"]


def fmt_pct(x: float, digits: int = 1) -> str:
    return f"{x:.{digits}f}%"


def render_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """A fixed-width text table."""
    cells = [[str(c) for c in row] for row in rows]
    cols = [list(col) for col in zip(*([list(headers)] + cells))] \
        if cells else [[h] for h in headers]
    widths = [max(len(v) for v in col) for col in cols]

    def line(row):
        return " | ".join(v.ljust(w) for v, w in zip(row, widths))

    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append(sep)
    out.extend(line(r) for r in cells)
    return "\n".join(out)


def render_bars(values: dict[str, float], unit: str = "%",
                width: int = 40, title: str = "") -> str:
    """A horizontal ASCII bar chart (one bar per labeled value)."""
    out = []
    if title:
        out.append(title)
    if not values:
        return title
    peak = max(abs(v) for v in values.values()) or 1.0
    label_w = max(len(k) for k in values)
    for name, v in values.items():
        bar = "#" * max(0, round(abs(v) / peak * width))
        out.append(f"{name.ljust(label_w)} |{bar.ljust(width)}| "
                   f"{v:7.2f}{unit}")
    return "\n".join(out)
